#ifndef SATO_NN_MATRIX_H_
#define SATO_NN_MATRIX_H_

#include <algorithm>  // std::fill used by Fill() below
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace sato::nn {

/// Dense row-major matrix of doubles. This is the only tensor type the
/// library needs: batches are matrices of shape [batch, features] and all
/// layers map matrices to matrices.
///
/// Shape conventions used across src/nn, src/encoder and src/core:
///  * storage is row-major and contiguous: element (r, c) lives at
///    data()[r * cols() + c], and Row(r) is a contiguous span of cols()
///    doubles;
///  * rows index the batch (one column-of-a-table per row for the
///    column-wise model, one token per row inside the encoder); columns
///    index features;
///  * weights are stored [in_features, out_features], so a forward pass is
///    always `activations = MatMul(input, weight)` with no transpose;
///  * a "row vector" is a [1, n] Matrix (biases, ColumnSums results).
///
/// Thread-safety follows the usual const contract: concurrent reads of one
/// Matrix are safe, any mutation needs external ordering. The re-entrant
/// inference path never mutates shared matrices -- every intermediate is
/// drawn from a per-thread nn::Workspace.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Gaussian init with the given standard deviation.
  static Matrix Gaussian(size_t rows, size_t cols, double stddev,
                         util::Rng* rng);

  /// Kaiming-He init for a [fan_in, fan_out] weight (suits ReLU networks).
  static Matrix KaimingHe(size_t fan_in, size_t fan_out, util::Rng* rng);

  /// Builds a 1 x n row matrix from a vector.
  static Matrix FromRow(const std::vector<double>& row);

  /// Builds a matrix from row vectors (all must share a length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a vector.
  std::vector<double> RowVector(size_t r) const;

  /// Sets row r from a vector of length cols().
  void SetRow(size_t r, const std::vector<double>& v);

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshapes to [rows, cols] and zero-fills. Existing heap storage is
  /// reused whenever capacity allows -- this is what lets Workspace hand
  /// out scratch matrices without steady-state allocation.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Resize that skips the zero-fill: surviving elements keep stale
  /// values. Only for outputs the caller fully overwrites (MatMulInto).
  void ResizeUninit(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  // -- element-wise in-place ops ------------------------------------------
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Hadamard (element-wise) product in place.
  void HadamardInPlace(const Matrix& other);

  /// Adds a 1 x cols row vector to every row.
  void AddRowVectorInPlace(const Matrix& row);

  /// Sum over rows -> 1 x cols.
  Matrix ColumnSums() const;

  /// Mean over rows -> 1 x cols.
  Matrix ColumnMeans() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Debug string with shape and a few leading values.
  std::string DebugString() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

// -- matrix multiplication --------------------------------------------------
// All four routings run on the cache-blocked, register-tiled kernel in
// nn/gemm.h under the process-wide gemm::DefaultConfig() (serial blocked
// kernel by default -- see gemm.h for tuning, parallel splits and the
// reference-kernel escape hatch). They are re-entrant, allocate no
// steady-state heap (packing scratch is thread_local and recycled), and
// throw std::invalid_argument on inner-dimension mismatch.

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B written into a caller-owned matrix pre-shaped to [m,n], so
/// hot paths can reuse pooled storage (Workspace::ScratchUninit). The
/// output is completely overwritten and bit-identical to MatMul.
/// Aliasing rule: `c` must not alias `a` or `b` -- the kernel interleaves
/// reads of both inputs with writes to `c`, so an aliased call reads
/// partially overwritten inputs. (Workspace scratch never aliases layer
/// parameters, which is what the inference path relies on.)
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c);

/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n]. B is read through a
/// transposed view; no transposed copy of B is materialised beyond the
/// kernel's packed panels.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n]. Same view mechanics as
/// MatMulTransposeB.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Horizontal concatenation [A | B] of matrices with equal row counts.
Matrix ConcatColumns(const Matrix& a, const Matrix& b);

}  // namespace sato::nn

#endif  // SATO_NN_MATRIX_H_
