#ifndef SATO_NN_LINEAR_H_
#define SATO_NN_LINEAR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "nn/gemm.h"
#include "nn/layer.h"

namespace sato::nn {

/// Fully-connected layer: y = x W + b, W: [in, out], b: [1, out].
///
/// When the process-wide gemm config selects the int8 path, Apply reuses a
/// lazily-built quantized packing of W across calls (quantizing the weight
/// side is O(in * out) scalar work -- at serving batch sizes it costs more
/// than the multiply itself). The cache is invalidated by the training
/// entry points (Forward/Backward; the optimiser only steps parameters
/// between a Backward and the next Forward) and keyed on W's buffer
/// address so replacing the weights wholesale (nn::LoadParameters
/// move-assigns a fresh buffer) never reuses a stale packing. Concurrent
/// Apply calls may race to build it; every build packs the same frozen
/// weights, so whichever wins is interchangeable.
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, util::Rng* rng);

  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Matrix input_cache_;
  mutable std::atomic<std::shared_ptr<const gemm::PackedInt8B>> int8_weights_;
};

}  // namespace sato::nn

#endif  // SATO_NN_LINEAR_H_
