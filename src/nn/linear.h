#ifndef SATO_NN_LINEAR_H_
#define SATO_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace sato::nn {

/// Fully-connected layer: y = x W + b, W: [in, out], b: [1, out].
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, util::Rng* rng);

  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Matrix input_cache_;
};

}  // namespace sato::nn

#endif  // SATO_NN_LINEAR_H_
