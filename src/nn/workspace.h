#ifndef SATO_NN_WORKSPACE_H_
#define SATO_NN_WORKSPACE_H_

#include <cstddef>
#include <deque>

#include "nn/matrix.h"

namespace sato::nn {

/// A pool of scratch matrices backing the re-entrant inference path
/// (Layer::Apply and everything built on it).
///
/// Layers must not own mutable per-call state if one model instance is to
/// serve many threads, so every intermediate an inference pass needs lives
/// here instead: the caller owns one Workspace per thread and passes it
/// down through Apply. Scratch() hands out zero-filled matrices whose
/// storage is recycled across rounds -- after the first few calls reach
/// the high-water mark, repeated predictions perform no heap allocation.
///
/// Usage contract:
///  * One Workspace is used by at most one prediction call at a time
///    (workspaces are cheap; make one per thread).
///  * Reset() marks every pooled matrix free for reuse and is called by
///    top-level entry points (e.g. SatoModel::Predict) -- references
///    obtained from Scratch() before the last Reset() are invalid.
///  * Scratch() results keep stable addresses until Reset(), so a layer
///    may safely return a reference to its output slot while later layers
///    acquire more scratch.
///
/// Re-entrancy map of the inference stack (what "const" buys): every
/// Layer::Apply, MultiHeadSelfAttention::Apply, TransformerBlock::Apply,
/// TokenEncoderModel::Apply, ColumnwiseModel::Apply and the const
/// SatoModel::Predict* overloads draw ALL mutable state from the Workspace
/// passed in (plus thread_local GEMM packing buffers, see nn/gemm.h), so
/// one immutable model instance serves any number of threads as long as
/// each thread brings its own Workspace. Training-time Forward()/Backward()
/// cache activations on the layers and are NOT re-entrant.
class Workspace {
 public:
  Workspace() = default;

  // A workspace is thread-local state; copying one is always a bug.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Returns a zero-filled [rows, cols] matrix, reusing pooled storage.
  /// The reference stays valid until the next Reset().
  Matrix& Scratch(size_t rows, size_t cols);

  /// Scratch without the zero-fill, for outputs the caller overwrites in
  /// full before reading (e.g. MatMulInto destinations, which the GEMM
  /// kernel overwrites completely): skips one memory pass on the hot
  /// path. Contents are stale garbage until written, so never
  /// read-modify-write them. Scratch matrices never alias layer
  /// parameters, satisfying the MatMulInto aliasing rule (matrix.h).
  Matrix& ScratchUninit(size_t rows, size_t cols);

  /// Makes all pooled matrices available for reuse (storage is kept).
  void Reset() { next_ = 0; }

  /// Number of matrices currently pooled (the high-water mark of one
  /// prediction round); exposed so tests can assert steady state.
  size_t pooled() const { return pool_.size(); }

  /// Bytes of matrix storage held by the pool.
  size_t PooledBytes() const;

 private:
  std::deque<Matrix> pool_;  // deque: stable addresses as the pool grows
  size_t next_ = 0;
};

}  // namespace sato::nn

#endif  // SATO_NN_WORKSPACE_H_
