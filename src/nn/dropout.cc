#include "nn/dropout.h"

#include <stdexcept>

namespace sato::nn {

Dropout::Dropout(double rate, util::Rng* rng) : rate_(rate), rng_(rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout rate must be in [0, 1)");
  }
}

Matrix Dropout::Forward(const Matrix& input, bool train) {
  last_train_ = train;
  if (!train || rate_ == 0.0) return input;
  double keep = 1.0 - rate_;
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng_->Uniform() < keep) {
      mask_.data()[i] = 1.0 / keep;
      out.data()[i] *= 1.0 / keep;
    } else {
      out.data()[i] = 0.0;
    }
  }
  return out;
}

const Matrix& Dropout::Apply(const Matrix& input, Workspace* /*ws*/) const {
  return input;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (!last_train_ || rate_ == 0.0) return grad_output;
  Matrix grad = grad_output;
  grad.HadamardInPlace(mask_);
  return grad;
}

}  // namespace sato::nn
