#ifndef SATO_NN_LAYER_H_
#define SATO_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "nn/workspace.h"

namespace sato::nn {

/// A trainable tensor together with its accumulated gradient.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Base class for all layers. Layers own their parameters and cache
/// whatever they need from Forward to compute Backward.
///
/// Contract: Backward must be called with the gradient of the loss w.r.t.
/// the layer's most recent Forward output, and returns the gradient w.r.t.
/// that Forward call's input, accumulating parameter gradients on the way.
///
/// Two forward entry points:
///  * Forward(input, train) is the training path; it may cache
///    activations on the layer and is therefore NOT re-entrant.
///  * Apply(input, ws) is the inference path: const, writes nothing to the
///    layer, and draws every intermediate from the caller's Workspace, so
///    any number of threads may Apply one shared layer concurrently.
///    Apply is bit-identical to Forward(input, /*train=*/false).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass over a [batch, in_features] matrix. `train` toggles
  /// training-only behaviour (dropout masks, batch-norm batch statistics).
  virtual Matrix Forward(const Matrix& input, bool train) = 0;

  /// Re-entrant inference pass; see class contract. The returned reference
  /// points into `ws` (or at `input` for identity layers) and stays valid
  /// until the workspace is Reset.
  virtual const Matrix& Apply(const Matrix& input, Workspace* ws) const = 0;

  /// Backward pass; see class contract.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (possibly empty).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Human-readable layer name for debugging and serialization.
  virtual std::string name() const = 0;
};

}  // namespace sato::nn

#endif  // SATO_NN_LAYER_H_
