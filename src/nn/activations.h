#ifndef SATO_NN_ACTIVATIONS_H_
#define SATO_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace sato::nn {

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix mask_;  // 1 where input > 0
};

/// Gaussian error linear unit (tanh approximation); used by the
/// Transformer-based extension model (§6).
class GELU : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string name() const override { return "GELU"; }

 private:
  Matrix input_cache_;
};

}  // namespace sato::nn

#endif  // SATO_NN_ACTIVATIONS_H_
