#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sato::nn {

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out = logits;
  SoftmaxRowsInPlace(&out);
  return out;
}

void SoftmaxRowsInPlace(Matrix* m) {
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->Row(r);
    double mx = *std::max_element(row, row + m->cols());
    double sum = 0.0;
    for (size_t c = 0; c < m->cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < m->cols(); ++c) row[c] /= sum;
  }
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out = logits;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.Row(r);
    double mx = *std::max_element(row, row + out.cols());
    double sum = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) sum += std::exp(row[c] - mx);
    double lse = mx + std::log(sum);
    for (size_t c = 0; c < out.cols(); ++c) row[c] -= lse;
  }
  return out;
}

double SoftmaxCrossEntropy::Forward(const Matrix& logits,
                                    const std::vector<int>& targets) {
  if (logits.rows() != targets.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: batch mismatch");
  }
  probs_ = SoftmaxRows(logits);
  targets_ = targets;
  double loss = 0.0;
  for (size_t r = 0; r < logits.rows(); ++r) {
    int t = targets[r];
    if (t < 0 || static_cast<size_t>(t) >= logits.cols()) {
      throw std::invalid_argument("SoftmaxCrossEntropy: target out of range");
    }
    loss -= std::log(std::max(probs_(r, static_cast<size_t>(t)), 1e-12));
  }
  return loss / static_cast<double>(logits.rows());
}

Matrix SoftmaxCrossEntropy::Backward() const {
  Matrix grad = probs_;
  double inv_n = 1.0 / static_cast<double>(grad.rows());
  for (size_t r = 0; r < grad.rows(); ++r) {
    grad(r, static_cast<size_t>(targets_[r])) -= 1.0;
    double* row = grad.Row(r);
    for (size_t c = 0; c < grad.cols(); ++c) row[c] *= inv_n;
  }
  return grad;
}

}  // namespace sato::nn
