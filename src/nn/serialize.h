#ifndef SATO_NN_SERIALIZE_H_
#define SATO_NN_SERIALIZE_H_

#include <iosfwd>
#include <vector>

#include "nn/layer.h"

namespace sato::nn {

/// Binary serialization of a parameter list (shape-checked on load).
/// Layout: magic, count, then per parameter: rows, cols, row-major doubles.
/// Used to persist trained Sato models ("we are publicly releasing our
/// trained model", §8).
void SaveParameters(const std::vector<Parameter*>& params, std::ostream* out);

/// Loads values into the given parameters; throws on shape or magic
/// mismatch (the architecture must be constructed identically first).
void LoadParameters(const std::vector<Parameter*>& params, std::istream* in);

/// Saves a raw matrix.
void SaveMatrix(const Matrix& m, std::ostream* out);

/// Loads a raw matrix.
Matrix LoadMatrix(std::istream* in);

}  // namespace sato::nn

#endif  // SATO_NN_SERIALIZE_H_
