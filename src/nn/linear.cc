#include "nn/linear.h"

namespace sato::nn {

Linear::Linear(size_t in_features, size_t out_features, util::Rng* rng)
    : weight_("weight", Matrix::KaimingHe(in_features, out_features, rng)),
      bias_("bias", Matrix::Zeros(1, out_features)) {}

Matrix Linear::Forward(const Matrix& input, bool /*train*/) {
  input_cache_ = input;
  Matrix out = MatMul(input, weight_.value);
  out.AddRowVectorInPlace(bias_.value);
  return out;
}

const Matrix& Linear::Apply(const Matrix& input, Workspace* ws) const {
  Matrix& out = ws->ScratchUninit(input.rows(), weight_.value.cols());
  MatMulInto(input, weight_.value, &out);
  out.AddRowVectorInPlace(bias_.value);
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  weight_.grad += MatMulTransposeA(input_cache_, grad_output);
  bias_.grad += grad_output.ColumnSums();
  return MatMulTransposeB(grad_output, weight_.value);
}

}  // namespace sato::nn
