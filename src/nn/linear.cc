#include "nn/linear.h"

namespace sato::nn {

Linear::Linear(size_t in_features, size_t out_features, util::Rng* rng)
    : weight_("weight", Matrix::KaimingHe(in_features, out_features, rng)),
      bias_("bias", Matrix::Zeros(1, out_features)) {}

Matrix Linear::Forward(const Matrix& input, bool /*train*/) {
  int8_weights_.store(nullptr, std::memory_order_release);
  input_cache_ = input;
  Matrix out = MatMul(input, weight_.value);
  out.AddRowVectorInPlace(bias_.value);
  return out;
}

const Matrix& Linear::Apply(const Matrix& input, Workspace* ws) const {
  Matrix& out = ws->ScratchUninit(input.rows(), weight_.value.cols());
  const gemm::Config& config = gemm::DefaultConfig();
  if (config.use_int8 && !config.use_reference &&
      weight_.value.rows() <= gemm::kInt8MaxSharedDim) {
    auto packed = int8_weights_.load(std::memory_order_acquire);
    if (!packed || packed->source != weight_.value.data()) {
      packed = std::make_shared<const gemm::PackedInt8B>(
          gemm::PackInt8B(weight_.value));
      int8_weights_.store(packed, std::memory_order_release);
    }
    gemm::GemmPrepackedInt8(input, *packed, &out, config);
  } else {
    MatMulInto(input, weight_.value, &out);
  }
  out.AddRowVectorInPlace(bias_.value);
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  int8_weights_.store(nullptr, std::memory_order_release);
  weight_.grad += MatMulTransposeA(input_cache_, grad_output);
  bias_.grad += grad_output.ColumnSums();
  return MatMulTransposeB(grad_output, weight_.value);
}

}  // namespace sato::nn
