#include "nn/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace sato::nn {

namespace {
constexpr uint64_t kMagic = 0x5341544f4d4f444cull;  // "SATOMODL"

void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t ReadU64(std::istream* in) {
  uint64_t v = 0;
  in->read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!*in) throw std::runtime_error("nn::LoadParameters: truncated stream");
  return v;
}
}  // namespace

void SaveMatrix(const Matrix& m, std::ostream* out) {
  WriteU64(out, m.rows());
  WriteU64(out, m.cols());
  out->write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(double)));
}

Matrix LoadMatrix(std::istream* in) {
  uint64_t rows = ReadU64(in);
  uint64_t cols = ReadU64(in);
  Matrix m(rows, cols);
  in->read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!*in) throw std::runtime_error("nn::LoadMatrix: truncated stream");
  return m;
}

void SaveParameters(const std::vector<Parameter*>& params, std::ostream* out) {
  WriteU64(out, kMagic);
  WriteU64(out, params.size());
  for (const Parameter* p : params) SaveMatrix(p->value, out);
}

void LoadParameters(const std::vector<Parameter*>& params, std::istream* in) {
  if (ReadU64(in) != kMagic) {
    throw std::runtime_error("nn::LoadParameters: bad magic");
  }
  if (ReadU64(in) != params.size()) {
    throw std::runtime_error("nn::LoadParameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    Matrix m = LoadMatrix(in);
    if (m.rows() != p->value.rows() || m.cols() != p->value.cols()) {
      throw std::runtime_error("nn::LoadParameters: shape mismatch for " + p->name);
    }
    p->value = std::move(m);
  }
}

}  // namespace sato::nn
