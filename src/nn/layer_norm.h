#ifndef SATO_NN_LAYER_NORM_H_
#define SATO_NN_LAYER_NORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace sato::nn {

/// Row-wise layer normalisation with learnable scale and shift, as used by
/// Transformer blocks (the §6 "featurization-free" extension model).
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(size_t features, double eps = 1e-5);

  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "LayerNorm"; }

 private:
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  Matrix x_hat_;
  std::vector<double> inv_std_;  // per row
};

}  // namespace sato::nn

#endif  // SATO_NN_LAYER_NORM_H_
