#include "nn/workspace.h"

namespace sato::nn {

Matrix& Workspace::Scratch(size_t rows, size_t cols) {
  if (next_ == pool_.size()) pool_.emplace_back();
  Matrix& m = pool_[next_++];
  m.Resize(rows, cols);
  return m;
}

Matrix& Workspace::ScratchUninit(size_t rows, size_t cols) {
  if (next_ == pool_.size()) pool_.emplace_back();
  Matrix& m = pool_[next_++];
  m.ResizeUninit(rows, cols);
  return m;
}

size_t Workspace::PooledBytes() const {
  size_t bytes = 0;
  for (const Matrix& m : pool_) bytes += m.size() * sizeof(double);
  return bytes;
}

}  // namespace sato::nn
