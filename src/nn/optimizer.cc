#include "nn/optimizer.h"

#include <cmath>

namespace sato::nn {

AdamOptimizer::AdamOptimizer(std::vector<Parameter*> params, Options options)
    : params_(std::move(params)), options_(options) {
  state_.reserve(params_.size());
  for (Parameter* p : params_) {
    state_.push_back(State{Matrix(p->value.rows(), p->value.cols()),
                           Matrix(p->value.rows(), p->value.cols())});
  }
}

void AdamOptimizer::Step() {
  ++step_;
  double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_));
  double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    State& s = state_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      double g = p->grad.data()[j];
      if (options_.weight_decay != 0.0) {
        g += options_.weight_decay * p->value.data()[j];
      }
      double& m = s.m.data()[j];
      double& v = s.v.data()[j];
      m = options_.beta1 * m + (1.0 - options_.beta1) * g;
      v = options_.beta2 * v + (1.0 - options_.beta2) * g * g;
      double m_hat = m / bc1;
      double v_hat = v / bc2;
      p->value.data()[j] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params,
                           double learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {}

void SgdOptimizer::Step() {
  for (Parameter* p : params_) {
    for (size_t j = 0; j < p->value.size(); ++j) {
      p->value.data()[j] -= learning_rate_ * p->grad.data()[j];
    }
  }
}

void SgdOptimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

}  // namespace sato::nn
