#ifndef SATO_NN_GEMM_H_
#define SATO_NN_GEMM_H_

#include <cstddef>
#include <functional>
#include <string>

#include "nn/matrix.h"

namespace sato::nn::gemm {

/// Cache-blocked, register-tiled GEMM -- the FLOP engine behind every
/// MatMul* entry point in matrix.h, and therefore behind Linear, multi-head
/// attention, the Transformer encoder and the column-wise model.
///
/// Algorithm (BLIS/Goto-style): C = op(A) * op(B) is computed over three
/// cache-blocking loops (columns of C in `nc` slabs, the shared dimension
/// in `kc` panels, rows of C in `mc` strips). Each (kc x nc) panel of B and
/// (mc x kc) strip of A is packed once into contiguous, zero-padded panel
/// storage, then a register-tiled micro-kernel computes kMicroRows x
/// kMicroCols output tiles with all accumulators in registers. The
/// transpose variants differ only in how the pack step walks A/B, so all
/// four MatMul routings share one kernel.
///
/// Numerical contract: for one (M, N, K, Config) the result is a pure
/// function of the inputs -- bitwise deterministic, on any thread count
/// (see Config::parallel_for). Different block sizes regroup the
/// k-accumulation and may differ from the reference kernel by normal
/// floating-point rounding (~1e-15 relative; tests allow 1e-12).
///
/// Thread-safety: every function here is re-entrant; scratch packing
/// buffers are thread_local and recycled across calls (no steady-state
/// allocation on the serving hot path, matching the Workspace design).

/// Barrier-style parallel-for: run fn(chunk) for every chunk in
/// [0, count) and return only once all calls have completed. The chunks
/// are independent (disjoint column ranges of C) and may execute in any
/// order on any thread, including the caller's.
using ParallelFor =
    std::function<void(size_t count, const std::function<void(size_t)>& fn)>;

/// Register micro-tile height (rows of C per micro-kernel call).
inline constexpr size_t kMicroRows = 4;
/// Register micro-tile width (columns of C per micro-kernel call).
inline constexpr size_t kMicroCols = 8;

/// Kernel tuning knobs. The defaults were measured on the serving
/// container (see docs/BENCHMARKS.md); all values are free to change at
/// runtime -- correctness never depends on them.
struct Config {
  // -- cache blocking -------------------------------------------------------
  size_t mc = 64;   ///< rows of A per packed strip (L1-resident with kc)
  size_t kc = 256;  ///< shared-dim depth per packed panel
  size_t nc = 512;  ///< columns of B per packed panel (L2-resident)

  // -- escape hatches -------------------------------------------------------
  /// Route through the naive triple-loop reference kernel instead of the
  /// blocked one. The reference kernel is the ground truth the blocked
  /// path is tested against; it is also the right choice for debugging
  /// suspected kernel issues in the field.
  bool use_reference = false;

  /// Allow the runtime CPU dispatch to select a wider-vector micro-kernel
  /// (AVX2+FMA on x86-64) when the hardware supports one. Results then
  /// depend on the host CPU (FMA changes rounding); disable to pin the
  /// portable generic micro-kernel when bitwise cross-machine
  /// reproducibility matters more than speed. Also forced off process-wide
  /// by SATO_DISABLE_CPU_DISPATCH=1 in the environment (see
  /// util::CpuDispatchDisabledByEnv), which DefaultConfig() honours.
  bool enable_cpu_dispatch = true;

  /// Quantized inference path: op(A) is quantized to int8 per ROW and
  /// op(B) per COLUMN (symmetric absmax scaling, q = lrint(x * 127 /
  /// absmax) clamped to [-127, 127]), the k-accumulation runs in exact
  /// int32 arithmetic (madd-style int16-pair micro-kernel under AVX2),
  /// and each output dequantizes once: c[i,j] = acc * scale_a[i] *
  /// scale_b[j]. Roughly half the packed-panel bandwidth of the fp64
  /// path at ~1e-2 relative accuracy -- an APPROXIMATION, so eval gates
  /// it behind a macro-F1 parity check before serving selects it (see
  /// eval::RunInt8AccuracyGate). Because the accumulators are integers,
  /// the result is bitwise identical across kernels (scalar vs AVX2),
  /// thread counts and blocking -- flipping enable_cpu_dispatch or
  /// parallel_for never changes an int8 result. `use_reference` takes
  /// precedence; k above ~131k falls back to the fp64 blocked path (the
  /// int32 accumulator bound k * 127^2 < 2^31).
  bool use_int8 = false;

  // -- optional column parallelism ------------------------------------------
  /// When set, C's columns are split into contiguous chunks (aligned to
  /// kMicroCols) and computed through this barrier. Each output element is
  /// written by exactly one chunk with an execution-order-independent
  /// accumulation order, so the result is byte-identical to the serial
  /// path for ANY chunk count or thread count. Leave empty for serial.
  ///
  /// serve::GemmParallelFor adapts a serve::ThreadPool to this signature.
  /// CAUTION: never invoke a pool-backed ParallelFor from inside a task of
  /// the same pool -- ThreadPool::Wait is a global barrier and would
  /// deadlock. The BatchPredictor already parallelises across tables, so
  /// its workers must (and do) run the serial kernel.
  ParallelFor parallel_for;

  /// Number of column chunks handed to parallel_for; 0 derives one chunk
  /// per `nc` slab. Callers that know their pool width typically set this
  /// to the worker count.
  size_t parallel_chunks = 0;

  /// Matrices with fewer output columns than this run serially even when
  /// parallel_for is set (the barrier costs more than the FLOPs saved).
  size_t parallel_min_columns = 128;
};

/// Largest shared dimension the int8 path accepts (the int32 accumulator
/// bound k * 127^2 < 2^31). Gemm silently runs the fp64 blocked path past
/// it; PackInt8B refuses, so a prepack caller must check first.
inline constexpr size_t kInt8MaxSharedDim = size_t{1} << 17;

/// One matrix quantized per column and packed into micro-kernel panels
/// once, for reuse as the B (weight) operand across many GemmPrepackedInt8
/// calls. Quantizing and packing B is O(k * n) scalar work -- with small
/// activation batches it dominates the whole multiply, so serving packs
/// each layer's frozen weights one time instead of per call. The contents
/// are a pure function of the matrix values, so any two packs of equal
/// matrices are interchangeable.
struct PackedInt8B {
  size_t k = 0;                   ///< shared dimension (rows of B)
  size_t n = 0;                   ///< output columns
  const double* source = nullptr; ///< data pointer B was packed from (cache key
                                  ///< only -- never dereferenced)
  std::vector<int16_t> panels;    ///< NR-column k-pair panels (see gemm.cc)
  std::vector<double> col_scale;  ///< per-column dequantization scales
};

/// Quantizes + packs `b` [k, n] for the B side of GemmPrepackedInt8.
/// Throws std::invalid_argument when k exceeds kInt8MaxSharedDim.
PackedInt8B PackInt8B(const Matrix& b);

/// C = A * B with B prepacked: bitwise identical to Gemm(a, b, c) under
/// `use_int8` for the matrix `packed` was built from, at O(m * k) packing
/// cost per call instead of O(m * k + k * n). Ignores `use_int8` /
/// `use_reference` (the caller already chose the quantized path).
void GemmPrepackedInt8(const Matrix& a, const PackedInt8B& packed, Matrix* c,
                       const Config& config);

/// Process-wide configuration used by the MatMul* wrappers in matrix.h.
/// Defaults to the serial blocked kernel with CPU dispatch enabled.
const Config& DefaultConfig();

/// Replaces the process-wide default. Not synchronised: call during
/// startup, before concurrent inference begins (the serving determinism
/// guarantee assumes every worker sees the same Config).
void SetDefaultConfig(const Config& config);

/// Human-readable name of the micro-kernel `config` would run with on this
/// host: "reference", "blocked-generic", "blocked-avx2fma", "int8-generic"
/// or "int8-avx2". Surfaced in BENCH_gemm.json / BENCH_serve.json so perf
/// datapoints are self-describing.
std::string KernelName(const Config& config = DefaultConfig());

// -- blocked entry points ---------------------------------------------------
// All three resize *c and overwrite it completely; `c` must not alias `a`
// or `b`. Shape mismatches throw std::invalid_argument. Degenerate shapes
// are well-defined: M==0 or N==0 yields an empty matrix, K==0 yields
// zeros.

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n].
void Gemm(const Matrix& a, const Matrix& b, Matrix* c,
          const Config& config = DefaultConfig());

/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n].
void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config = DefaultConfig());

/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n].
void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config = DefaultConfig());

// -- reference kernels ------------------------------------------------------
// The pre-kernel naive loops, preserved verbatim: single-threaded,
// cache-oblivious, with strict left-to-right k-accumulation per element.
// They are the parity baseline for tests/gemm_test.cc and the
// `use_reference` escape hatch, and the "naive" side of BENCH_gemm.json.

/// Reference C = A * B (i-k-j loop order, streams rows of B and C).
void ReferenceGemm(const Matrix& a, const Matrix& b, Matrix* c);

/// Reference C = A^T * B.
void ReferenceGemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c);

/// Reference C = A * B^T (row-dot-row, no transposed copy).
void ReferenceGemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c);

}  // namespace sato::nn::gemm

#endif  // SATO_NN_GEMM_H_
