#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/gemm.h"

namespace sato::nn {

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev,
                        util::Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::KaimingHe(size_t fan_in, size_t fan_out, util::Rng* rng) {
  double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return Gaussian(fan_in, fan_out, stddev, rng);
}

Matrix Matrix::FromRow(const std::vector<double>& row) {
  Matrix m(1, row.size());
  std::copy(row.begin(), row.end(), m.data_.begin());
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::FromRows: ragged input");
    }
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

std::vector<double> Matrix::RowVector(size_t r) const {
  return std::vector<double>(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::SetRow: size mismatch");
  std::copy(v.begin(), v.end(), Row(r));
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::HadamardInPlace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::HadamardInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::AddRowVectorInPlace(const Matrix& row) {
  if (row.rows_ != 1 || row.cols_ != cols_) {
    throw std::invalid_argument("AddRowVectorInPlace: expected 1 x cols row");
  }
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = Row(r);
    const double* src = row.data();
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
}

Matrix Matrix::ColumnSums() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    double* dst = out.data();
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

Matrix Matrix::ColumnMeans() const {
  Matrix out = ColumnSums();
  if (rows_ > 0) out *= 1.0 / static_cast<double>(rows_);
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (size_t i = 0; i < std::min<size_t>(6, data_.size()); ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > 6) os << ", ...";
  os << "]";
  return os.str();
}

// All four multiply routings funnel through the blocked kernel in
// nn/gemm.h (the process-wide gemm::DefaultConfig() selects the kernel),
// so Linear, attention, the encoder and the column-wise model pick up
// kernel improvements with no call-site changes.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm::Gemm(a, b, &c);
  return c;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  if (c->rows() != a.rows() || c->cols() != b.cols()) {
    throw std::invalid_argument("MatMulInto: bad output shape");
  }
  gemm::Gemm(a, b, c);
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm::GemmTransposeB(a, b, &c);
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm::GemmTransposeA(a, b, &c);
  return c;
}

Matrix ConcatColumns(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("ConcatColumns: row mismatch");
  }
  Matrix c(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.Row(r), a.Row(r) + a.cols(), c.Row(r));
    std::copy(b.Row(r), b.Row(r) + b.cols(), c.Row(r) + a.cols());
  }
  return c;
}

}  // namespace sato::nn
