#include "nn/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace sato::nn::gemm {
namespace {

constexpr size_t MR = kMicroRows;
constexpr size_t NR = kMicroCols;

/// Strided read-only view: element (i, j) is p[i * rs + j * cs]. Both
/// transpose variants reduce to swapping the strides, so the whole blocked
/// path below is written once against views.
struct ConstView {
  const double* p;
  size_t rs, cs;
  double At(size_t i, size_t j) const { return p[i * rs + j * cs]; }
};

// The micro-kernel body is expanded twice -- once per ISA level -- because
// GCC will not inline one function into another with a wider target
// attribute. Accumulators live in a local MR x NR tile the optimiser keeps
// fully in registers (4 x 8 doubles = 8 ymm accumulators under AVX2).
#define SATO_GEMM_MICROKERNEL_BODY                                       \
  double acc[MR * NR] = {};                                              \
  for (size_t p = 0; p < kb; ++p) {                                      \
    const double* bv = bp + p * NR;                                      \
    const double* av = ap + p * MR;                                      \
    for (size_t i = 0; i < MR; ++i) {                                    \
      double a_i = av[i];                                                \
      for (size_t j = 0; j < NR; ++j) acc[i * NR + j] += a_i * bv[j];    \
    }                                                                    \
  }                                                                      \
  std::memcpy(out, acc, sizeof(acc));

/// Portable micro-kernel: whatever vector width the baseline target has.
void MicroKernelGeneric(size_t kb, const double* ap, const double* bp,
                        double* out) {
  SATO_GEMM_MICROKERNEL_BODY
}

#if defined(__GNUC__) && defined(__x86_64__)
#define SATO_GEMM_HAS_AVX2_KERNEL 1
/// Same body compiled for AVX2+FMA; selected by runtime dispatch so the
/// binary still runs on baseline x86-64.
__attribute__((target("avx2,fma"))) void MicroKernelAvx2Fma(
    size_t kb, const double* ap, const double* bp, double* out) {
  SATO_GEMM_MICROKERNEL_BODY
}
#endif

#undef SATO_GEMM_MICROKERNEL_BODY

using MicroKernelFn = void (*)(size_t, const double*, const double*, double*);

bool HaveAvx2Fma() {
#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
  static const bool have =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return have;
#else
  return false;
#endif
}

MicroKernelFn PickMicroKernel(const Config& config) {
#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
  if (config.enable_cpu_dispatch && HaveAvx2Fma()) return MicroKernelAvx2Fma;
#else
  (void)config;
#endif
  return MicroKernelGeneric;
}

/// Packs the [i0, i0+mb) x [k0, k0+kb) block of A into MR-row panels laid
/// out k-major, zero-padding the last partial panel so the micro-kernel
/// never branches on row count.
void PackA(const ConstView& a, size_t i0, size_t k0, size_t mb, size_t kb,
           double* out) {
  for (size_t ir = 0; ir < mb; ir += MR) {
    size_t mr = std::min(MR, mb - ir);
    for (size_t p = 0; p < kb; ++p) {
      for (size_t i = 0; i < mr; ++i) *out++ = a.At(i0 + ir + i, k0 + p);
      for (size_t i = mr; i < MR; ++i) *out++ = 0.0;
    }
  }
}

/// Packs the [k0, k0+kb) x [j0, j0+nb) block of B into NR-column panels
/// laid out k-major, zero-padded like PackA. Padded lanes contribute only
/// zeros to the accumulators and are never written back.
void PackB(const ConstView& b, size_t k0, size_t j0, size_t kb, size_t nb,
           double* out) {
  for (size_t jr = 0; jr < nb; jr += NR) {
    size_t nr = std::min(NR, nb - jr);
    for (size_t p = 0; p < kb; ++p) {
      for (size_t j = 0; j < nr; ++j) *out++ = b.At(k0 + p, j0 + jr + j);
      for (size_t j = nr; j < NR; ++j) *out++ = 0.0;
    }
  }
}

/// Computes columns [j0, j1) of C = op(A) * op(B) with the full blocking
/// scheme. Each element's k-accumulation order depends only on kc, so any
/// column split across threads is bitwise identical to the serial run.
void GemmColumnRange(const ConstView& a, const ConstView& b, double* c,
                     size_t ldc, size_t m, size_t k, size_t j0, size_t j1,
                     const Config& config, MicroKernelFn micro) {
  // Packing scratch. thread_local keeps the capacity across calls, so the
  // steady-state serving path allocates nothing here (same discipline as
  // nn::Workspace); distinct threads pack into distinct buffers.
  static thread_local std::vector<double> a_panel, b_panel;

  const size_t mc = std::max<size_t>(MR, config.mc);
  const size_t kc = std::max<size_t>(1, config.kc);
  const size_t nc = std::max<size_t>(NR, config.nc);

  for (size_t jc = j0; jc < j1; jc += nc) {
    size_t nb = std::min(nc, j1 - jc);
    size_t nb_pad = (nb + NR - 1) / NR * NR;
    for (size_t pc = 0; pc < k; pc += kc) {
      size_t kb = std::min(kc, k - pc);
      b_panel.resize(nb_pad * kb);
      PackB(b, pc, jc, kb, nb, b_panel.data());
      // First k-panel stores into C, later panels accumulate: C is fully
      // overwritten without a separate zeroing pass.
      bool first = (pc == 0);
      for (size_t ic = 0; ic < m; ic += mc) {
        size_t mb = std::min(mc, m - ic);
        size_t mb_pad = (mb + MR - 1) / MR * MR;
        a_panel.resize(mb_pad * kb);
        PackA(a, ic, pc, mb, kb, a_panel.data());
        for (size_t jr = 0; jr < nb; jr += NR) {
          size_t nr = std::min(NR, nb - jr);
          const double* bp = b_panel.data() + jr / NR * (NR * kb);
          for (size_t ir = 0; ir < mb; ir += MR) {
            size_t mr = std::min(MR, mb - ir);
            const double* ap = a_panel.data() + ir / MR * (MR * kb);
            double tile[MR * NR];
            micro(kb, ap, bp, tile);
            double* cblk = c + (ic + ir) * ldc + jc + jr;
            if (first) {
              for (size_t i = 0; i < mr; ++i)
                for (size_t j = 0; j < nr; ++j)
                  cblk[i * ldc + j] = tile[i * NR + j];
            } else {
              for (size_t i = 0; i < mr; ++i)
                for (size_t j = 0; j < nr; ++j)
                  cblk[i * ldc + j] += tile[i * NR + j];
            }
          }
        }
      }
    }
  }
}

/// Shared driver for all three entry points once shapes are resolved into
/// views of op(A) [m,k] and op(B) [k,n].
void GemmView(const ConstView& a, const ConstView& b, size_t m, size_t k,
              size_t n, Matrix* c, const Config& config) {
  c->ResizeUninit(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c->Fill(0.0);  // empty sum: the reference kernels also yield zeros
    return;
  }
  MicroKernelFn micro = PickMicroKernel(config);
  double* cdata = c->data();

  if (config.parallel_for && n >= config.parallel_min_columns) {
    const size_t nc = std::max<size_t>(NR, config.nc);
    size_t chunks = config.parallel_chunks != 0 ? config.parallel_chunks
                                                : (n + nc - 1) / nc;
    chunks = std::max<size_t>(1, std::min(chunks, (n + NR - 1) / NR));
    // Contiguous column ranges aligned to the micro-tile width; disjoint
    // output bytes, so chunks need no synchronisation beyond the barrier.
    size_t per = ((n + chunks - 1) / chunks + NR - 1) / NR * NR;
    config.parallel_for(chunks, [&](size_t chunk) {
      size_t j0 = chunk * per;
      if (j0 >= n) return;
      size_t j1 = std::min(n, j0 + per);
      GemmColumnRange(a, b, cdata, n, m, k, j0, j1, config, micro);
    });
    return;
  }
  GemmColumnRange(a, b, cdata, n, m, k, 0, n, config, micro);
}

}  // namespace

namespace {
Config& MutableDefaultConfig() {
  static Config* config = new Config();  // leaked: outlives static dtors
  return *config;
}
}  // namespace

const Config& DefaultConfig() { return MutableDefaultConfig(); }

void SetDefaultConfig(const Config& config) {
  MutableDefaultConfig() = config;
}

std::string KernelName(const Config& config) {
  if (config.use_reference) return "reference";
  if (config.enable_cpu_dispatch && HaveAvx2Fma()) return "blocked-avx2fma";
  return "blocked-generic";
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* c, const Config& config) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm::Gemm: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemm(a, b, c);
    return;
  }
  ConstView av{a.data(), a.cols(), 1};
  ConstView bv{b.data(), b.cols(), 1};
  GemmView(av, bv, a.rows(), a.cols(), b.cols(), c, config);
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("gemm::GemmTransposeA: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemmTransposeA(a, b, c);
    return;
  }
  // op(A) = A^T: element (i, k) of the view is A(k, i).
  ConstView av{a.data(), 1, a.cols()};
  ConstView bv{b.data(), b.cols(), 1};
  GemmView(av, bv, a.cols(), a.rows(), b.cols(), c, config);
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("gemm::GemmTransposeB: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemmTransposeB(a, b, c);
    return;
  }
  // op(B) = B^T: element (k, j) of the view is B(j, k).
  ConstView av{a.data(), a.cols(), 1};
  ConstView bv{b.data(), 1, b.cols()};
  GemmView(av, bv, a.rows(), a.cols(), b.rows(), c, config);
}

void ReferenceGemm(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm::ReferenceGemm: shape mismatch");
  }
  c->Resize(a.rows(), b.cols());
  // i-k-j loop order: streams over contiguous rows of b and c.
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c->Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

void ReferenceGemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("gemm::ReferenceGemmTransposeA: shape mismatch");
  }
  c->Resize(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c->Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
}

void ReferenceGemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("gemm::ReferenceGemmTransposeB: shape mismatch");
  }
  c->Resize(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c->Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

}  // namespace sato::nn::gemm
