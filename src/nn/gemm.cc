#include "nn/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "util/cpu.h"

namespace sato::nn::gemm {
namespace {

constexpr size_t MR = kMicroRows;
constexpr size_t NR = kMicroCols;

/// Strided read-only view: element (i, j) is p[i * rs + j * cs]. Both
/// transpose variants reduce to swapping the strides, so the whole blocked
/// path below is written once against views.
struct ConstView {
  const double* p;
  size_t rs, cs;
  double At(size_t i, size_t j) const { return p[i * rs + j * cs]; }
};

// The micro-kernel body is expanded twice -- once per ISA level -- because
// GCC will not inline one function into another with a wider target
// attribute. Accumulators live in a local MR x NR tile the optimiser keeps
// fully in registers (4 x 8 doubles = 8 ymm accumulators under AVX2).
#define SATO_GEMM_MICROKERNEL_BODY                                       \
  double acc[MR * NR] = {};                                              \
  for (size_t p = 0; p < kb; ++p) {                                      \
    const double* bv = bp + p * NR;                                      \
    const double* av = ap + p * MR;                                      \
    for (size_t i = 0; i < MR; ++i) {                                    \
      double a_i = av[i];                                                \
      for (size_t j = 0; j < NR; ++j) acc[i * NR + j] += a_i * bv[j];    \
    }                                                                    \
  }                                                                      \
  std::memcpy(out, acc, sizeof(acc));

/// Portable micro-kernel: whatever vector width the baseline target has.
void MicroKernelGeneric(size_t kb, const double* ap, const double* bp,
                        double* out) {
  SATO_GEMM_MICROKERNEL_BODY
}

#if defined(__GNUC__) && defined(__x86_64__)
#define SATO_GEMM_HAS_AVX2_KERNEL 1
/// Same body compiled for AVX2+FMA; selected by runtime dispatch so the
/// binary still runs on baseline x86-64.
__attribute__((target("avx2,fma"))) void MicroKernelAvx2Fma(
    size_t kb, const double* ap, const double* bp, double* out) {
  SATO_GEMM_MICROKERNEL_BODY
}
#endif

#undef SATO_GEMM_MICROKERNEL_BODY

using MicroKernelFn = void (*)(size_t, const double*, const double*, double*);

bool HaveAvx2Fma() {
#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
  static const bool have =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return have;
#else
  return false;
#endif
}

MicroKernelFn PickMicroKernel(const Config& config) {
#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
  if (config.enable_cpu_dispatch && HaveAvx2Fma()) return MicroKernelAvx2Fma;
#else
  (void)config;
#endif
  return MicroKernelGeneric;
}

/// Packs the [i0, i0+mb) x [k0, k0+kb) block of A into MR-row panels laid
/// out k-major, zero-padding the last partial panel so the micro-kernel
/// never branches on row count.
void PackA(const ConstView& a, size_t i0, size_t k0, size_t mb, size_t kb,
           double* out) {
  for (size_t ir = 0; ir < mb; ir += MR) {
    size_t mr = std::min(MR, mb - ir);
    for (size_t p = 0; p < kb; ++p) {
      for (size_t i = 0; i < mr; ++i) *out++ = a.At(i0 + ir + i, k0 + p);
      for (size_t i = mr; i < MR; ++i) *out++ = 0.0;
    }
  }
}

/// Packs the [k0, k0+kb) x [j0, j0+nb) block of B into NR-column panels
/// laid out k-major, zero-padded like PackA. Padded lanes contribute only
/// zeros to the accumulators and are never written back.
void PackB(const ConstView& b, size_t k0, size_t j0, size_t kb, size_t nb,
           double* out) {
  for (size_t jr = 0; jr < nb; jr += NR) {
    size_t nr = std::min(NR, nb - jr);
    for (size_t p = 0; p < kb; ++p) {
      for (size_t j = 0; j < nr; ++j) *out++ = b.At(k0 + p, j0 + jr + j);
      for (size_t j = nr; j < NR; ++j) *out++ = 0.0;
    }
  }
}

/// Computes columns [j0, j1) of C = op(A) * op(B) with the full blocking
/// scheme. Each element's k-accumulation order depends only on kc, so any
/// column split across threads is bitwise identical to the serial run.
void GemmColumnRange(const ConstView& a, const ConstView& b, double* c,
                     size_t ldc, size_t m, size_t k, size_t j0, size_t j1,
                     const Config& config, MicroKernelFn micro) {
  // Packing scratch. thread_local keeps the capacity across calls, so the
  // steady-state serving path allocates nothing here (same discipline as
  // nn::Workspace); distinct threads pack into distinct buffers.
  static thread_local std::vector<double> a_panel, b_panel;

  const size_t mc = std::max<size_t>(MR, config.mc);
  const size_t kc = std::max<size_t>(1, config.kc);
  const size_t nc = std::max<size_t>(NR, config.nc);

  for (size_t jc = j0; jc < j1; jc += nc) {
    size_t nb = std::min(nc, j1 - jc);
    size_t nb_pad = (nb + NR - 1) / NR * NR;
    for (size_t pc = 0; pc < k; pc += kc) {
      size_t kb = std::min(kc, k - pc);
      b_panel.resize(nb_pad * kb);
      PackB(b, pc, jc, kb, nb, b_panel.data());
      // First k-panel stores into C, later panels accumulate: C is fully
      // overwritten without a separate zeroing pass.
      bool first = (pc == 0);
      for (size_t ic = 0; ic < m; ic += mc) {
        size_t mb = std::min(mc, m - ic);
        size_t mb_pad = (mb + MR - 1) / MR * MR;
        a_panel.resize(mb_pad * kb);
        PackA(a, ic, pc, mb, kb, a_panel.data());
        for (size_t jr = 0; jr < nb; jr += NR) {
          size_t nr = std::min(NR, nb - jr);
          const double* bp = b_panel.data() + jr / NR * (NR * kb);
          for (size_t ir = 0; ir < mb; ir += MR) {
            size_t mr = std::min(MR, mb - ir);
            const double* ap = a_panel.data() + ir / MR * (MR * kb);
            double tile[MR * NR];
            micro(kb, ap, bp, tile);
            double* cblk = c + (ic + ir) * ldc + jc + jr;
            if (first) {
              for (size_t i = 0; i < mr; ++i)
                for (size_t j = 0; j < nr; ++j)
                  cblk[i * ldc + j] = tile[i * NR + j];
            } else {
              for (size_t i = 0; i < mr; ++i)
                for (size_t j = 0; j < nr; ++j)
                  cblk[i * ldc + j] += tile[i * NR + j];
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// int8 quantized path
// ---------------------------------------------------------------------------

/// Largest k the int8 path accepts: each int32 accumulator sums k products
/// bounded by 127^2 * 2 per madd pair, so k * 127^2 < 2^31 keeps the
/// accumulation exact. Beyond this (never hit by the model's shapes) the
/// entry points silently run the fp64 blocked path instead.
constexpr size_t kMaxInt8K = kInt8MaxSharedDim;

/// Symmetric absmax quantization of one value. `inv_scale` is
/// 127 / absmax (0 for an all-zero row/column); the clamp absorbs the one
/// ulp by which `x * inv_scale` can exceed 127 at the extremes.
int16_t QuantizeValue(double x, double inv_scale) {
  long q = std::lrint(x * inv_scale);
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<int16_t>(q);
}

/// Packs ALL of op(A) [m,k] quantized per row into MR-row panels laid out
/// in k-PAIRS: element (panel p, row i, half h) at (p * MR + i) * 2 + h
/// holds q(A(i, 2p + h)), zero-padded in both directions. The pair layout
/// is what _mm256_madd_epi16 consumes as one 32-bit broadcast per row.
void PackAInt8(const ConstView& a, size_t m, size_t k,
               const double* inv_row_scale, int16_t* out) {
  const size_t kb2 = (k + 1) / 2;
  for (size_t ir = 0; ir < m; ir += MR) {
    size_t mr = std::min(MR, m - ir);
    for (size_t p = 0; p < kb2; ++p) {
      for (size_t i = 0; i < MR; ++i) {
        for (size_t h = 0; h < 2; ++h) {
          size_t kk = 2 * p + h;
          *out++ = (i < mr && kk < k)
                       ? QuantizeValue(a.At(ir + i, kk), inv_row_scale[ir + i])
                       : int16_t{0};
        }
      }
    }
  }
}

/// Packs ALL of op(B) [k,n] quantized per column into NR-column panels in
/// the matching k-pair layout: (panel p, column j, half h) at
/// (p * NR + j) * 2 + h holds q(B(2p + h, j)).
void PackBInt8(const ConstView& b, size_t k, size_t n,
               const double* inv_col_scale, int16_t* out) {
  const size_t kb2 = (k + 1) / 2;
  for (size_t jr = 0; jr < n; jr += NR) {
    size_t nr = std::min(NR, n - jr);
    for (size_t p = 0; p < kb2; ++p) {
      for (size_t j = 0; j < NR; ++j) {
        for (size_t h = 0; h < 2; ++h) {
          size_t kk = 2 * p + h;
          *out++ = (j < nr && kk < k)
                       ? QuantizeValue(b.At(kk, jr + j), inv_col_scale[jr + j])
                       : int16_t{0};
        }
      }
    }
  }
}

/// Portable int8 micro-kernel: exact int32 accumulation over the packed
/// k-pair panels. Integer addition is associative, so this is bitwise
/// identical to the AVX2 kernel below for any input.
void Int8MicroKernelGeneric(size_t kb2, const int16_t* ap, const int16_t* bp,
                            int32_t* out) {
  int32_t acc[MR * NR] = {};
  for (size_t p = 0; p < kb2; ++p) {
    const int16_t* av = ap + p * MR * 2;
    const int16_t* bv = bp + p * NR * 2;
    for (size_t i = 0; i < MR; ++i) {
      int32_t a0 = av[i * 2], a1 = av[i * 2 + 1];
      for (size_t j = 0; j < NR; ++j) {
        acc[i * NR + j] += a0 * bv[j * 2] + a1 * bv[j * 2 + 1];
      }
    }
  }
  std::memcpy(out, acc, sizeof(int32_t) * MR * NR);
}

#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
/// AVX2 int8 micro-kernel: one madd per (row, k-pair) -- each 32-bit lane
/// of `bv` holds a column's (b[2p,j], b[2p+1,j]) pair, the row's pair is
/// broadcast, and _mm256_madd_epi16 produces the exact pairwise int32 dot
/// products (int16 inputs are sign-extended; no maddubs saturation).
__attribute__((target("avx2"))) void Int8MicroKernelAvx2(size_t kb2,
                                                         const int16_t* ap,
                                                         const int16_t* bp,
                                                         int32_t* out) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  static_assert(MR == 4 && NR == 8, "int8 kernel assumes a 4x8 micro-tile");
  for (size_t p = 0; p < kb2; ++p) {
    __m256i bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * NR * 2));
    const int16_t* av = ap + p * MR * 2;
    int32_t pair[MR];
    std::memcpy(pair, av, sizeof(pair));
    acc0 = _mm256_add_epi32(acc0,
                            _mm256_madd_epi16(_mm256_set1_epi32(pair[0]), bv));
    acc1 = _mm256_add_epi32(acc1,
                            _mm256_madd_epi16(_mm256_set1_epi32(pair[1]), bv));
    acc2 = _mm256_add_epi32(acc2,
                            _mm256_madd_epi16(_mm256_set1_epi32(pair[2]), bv));
    acc3 = _mm256_add_epi32(acc3,
                            _mm256_madd_epi16(_mm256_set1_epi32(pair[3]), bv));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0 * NR), acc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 1 * NR), acc1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * NR), acc2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 3 * NR), acc3);
}
#endif

using Int8MicroKernelFn = void (*)(size_t, const int16_t*, const int16_t*,
                                   int32_t*);

Int8MicroKernelFn PickInt8MicroKernel(const Config& config) {
#if defined(SATO_GEMM_HAS_AVX2_KERNEL)
  if (config.enable_cpu_dispatch && util::CpuHasAvx2()) {
    return Int8MicroKernelAvx2;
  }
#else
  (void)config;
#endif
  return Int8MicroKernelGeneric;
}

/// B-side quantize + pack, whole (the int16 panels are a quarter of the
/// fp64 panel bandwidth, so no mc/kc blocking is needed at the model's
/// sizes). The k-accumulation downstream is a single exact int32 sum, so
/// the packed contents -- and every product computed from them -- are a
/// pure function of the input values, independent of kernel flavour,
/// chunking and thread count.
void QuantizePackBInt8(const ConstView& b, size_t k, size_t n,
                       std::vector<int16_t>* panels,
                       std::vector<double>* scale_b) {
  scale_b->resize(n);
  std::vector<double> inv_b(n);
  for (size_t j = 0; j < n; ++j) {
    double mx = 0.0;
    for (size_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::fabs(b.At(kk, j)));
    }
    (*scale_b)[j] = mx / 127.0;
    inv_b[j] = mx > 0.0 ? 127.0 / mx : 0.0;
  }
  const size_t kb2 = (k + 1) / 2;
  const size_t n_pad = (n + NR - 1) / NR * NR;
  panels->resize(n_pad * kb2 * 2);
  PackBInt8(b, k, n, inv_b.data(), panels->data());
}

/// A-side quantize + pack, micro-tile sweep and dequantization against an
/// already-packed B. Shared by the per-call path (GemmViewInt8) and the
/// prepacked-weights path (GemmPrepackedInt8), so the two are bitwise
/// identical by construction.
void Int8ComputeWithPackedB(const ConstView& a, size_t m, size_t k, size_t n,
                            const int16_t* qb_data, const double* sb,
                            Matrix* c, const Config& config) {
  c->ResizeUninit(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c->Fill(0.0);
    return;
  }
  // Quantization + packing scratch; thread_local like the fp64 panels.
  static thread_local std::vector<int16_t> qa;
  static thread_local std::vector<double> scale_a, inv_a;

  scale_a.resize(m);
  inv_a.resize(m);
  for (size_t i = 0; i < m; ++i) {
    double mx = 0.0;
    for (size_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::fabs(a.At(i, kk)));
    }
    scale_a[i] = mx / 127.0;
    inv_a[i] = mx > 0.0 ? 127.0 / mx : 0.0;
  }

  const size_t kb2 = (k + 1) / 2;
  const size_t m_pad = (m + MR - 1) / MR * MR;
  qa.resize(m_pad * kb2 * 2);
  PackAInt8(a, m, k, inv_a.data(), qa.data());

  Int8MicroKernelFn micro = PickInt8MicroKernel(config);
  double* cdata = c->data();
  const int16_t* qa_data = qa.data();
  const double* sa = scale_a.data();

  auto compute_columns = [&](size_t j0, size_t j1) {  // j0 NR-aligned
    int32_t tile[MR * NR];
    for (size_t jr = j0; jr < j1; jr += NR) {
      size_t nr = std::min(NR, n - jr);
      const int16_t* bp = qb_data + (jr / NR) * (kb2 * NR * 2);
      for (size_t ir = 0; ir < m; ir += MR) {
        size_t mr = std::min(MR, m - ir);
        const int16_t* ap = qa_data + (ir / MR) * (kb2 * MR * 2);
        micro(kb2, ap, bp, tile);
        for (size_t i = 0; i < mr; ++i) {
          for (size_t j = 0; j < nr; ++j) {
            cdata[(ir + i) * n + jr + j] =
                static_cast<double>(tile[i * NR + j]) *
                (sa[ir + i] * sb[jr + j]);
          }
        }
      }
    }
  };

  if (config.parallel_for && n >= config.parallel_min_columns) {
    const size_t nc = std::max<size_t>(NR, config.nc);
    size_t chunks = config.parallel_chunks != 0 ? config.parallel_chunks
                                                : (n + nc - 1) / nc;
    chunks = std::max<size_t>(1, std::min(chunks, (n + NR - 1) / NR));
    size_t per = ((n + chunks - 1) / chunks + NR - 1) / NR * NR;
    config.parallel_for(chunks, [&](size_t chunk) {
      size_t j0 = chunk * per;
      if (j0 >= n) return;
      compute_columns(j0, std::min(n, j0 + per));
    });
    return;
  }
  compute_columns(0, n);
}

/// Per-call int8 driver: quantize + pack B (thread_local scratch), then
/// run the shared compute. Serving layers with frozen weights should
/// prefer PackInt8B + GemmPrepackedInt8, which hoists the O(k * n) B-side
/// work out of the call.
void GemmViewInt8(const ConstView& a, const ConstView& b, size_t m, size_t k,
                  size_t n, Matrix* c, const Config& config) {
  static thread_local std::vector<int16_t> qb;
  static thread_local std::vector<double> scale_b;
  QuantizePackBInt8(b, k, n, &qb, &scale_b);
  Int8ComputeWithPackedB(a, m, k, n, qb.data(), scale_b.data(), c, config);
}

/// Shared driver for all three entry points once shapes are resolved into
/// views of op(A) [m,k] and op(B) [k,n].
void GemmView(const ConstView& a, const ConstView& b, size_t m, size_t k,
              size_t n, Matrix* c, const Config& config) {
  if (config.use_int8 && k <= kMaxInt8K) {
    GemmViewInt8(a, b, m, k, n, c, config);
    return;
  }
  c->ResizeUninit(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c->Fill(0.0);  // empty sum: the reference kernels also yield zeros
    return;
  }
  MicroKernelFn micro = PickMicroKernel(config);
  double* cdata = c->data();

  if (config.parallel_for && n >= config.parallel_min_columns) {
    const size_t nc = std::max<size_t>(NR, config.nc);
    size_t chunks = config.parallel_chunks != 0 ? config.parallel_chunks
                                                : (n + nc - 1) / nc;
    chunks = std::max<size_t>(1, std::min(chunks, (n + NR - 1) / NR));
    // Contiguous column ranges aligned to the micro-tile width; disjoint
    // output bytes, so chunks need no synchronisation beyond the barrier.
    size_t per = ((n + chunks - 1) / chunks + NR - 1) / NR * NR;
    config.parallel_for(chunks, [&](size_t chunk) {
      size_t j0 = chunk * per;
      if (j0 >= n) return;
      size_t j1 = std::min(n, j0 + per);
      GemmColumnRange(a, b, cdata, n, m, k, j0, j1, config, micro);
    });
    return;
  }
  GemmColumnRange(a, b, cdata, n, m, k, 0, n, config, micro);
}

}  // namespace

namespace {
Config& MutableDefaultConfig() {
  static Config* config = [] {
    Config* c = new Config();  // leaked: outlives static dtors
    c->enable_cpu_dispatch = !util::CpuDispatchDisabledByEnv();
    return c;
  }();
  return *config;
}
}  // namespace

const Config& DefaultConfig() { return MutableDefaultConfig(); }

void SetDefaultConfig(const Config& config) {
  MutableDefaultConfig() = config;
}

std::string KernelName(const Config& config) {
  if (config.use_reference) return "reference";
  if (config.use_int8) {
    return config.enable_cpu_dispatch && util::CpuHasAvx2() ? "int8-avx2"
                                                            : "int8-generic";
  }
  if (config.enable_cpu_dispatch && HaveAvx2Fma()) return "blocked-avx2fma";
  return "blocked-generic";
}

PackedInt8B PackInt8B(const Matrix& b) {
  if (b.rows() > kInt8MaxSharedDim) {
    throw std::invalid_argument(
        "gemm::PackInt8B: shared dimension exceeds the int8 accumulator "
        "bound");
  }
  PackedInt8B packed;
  packed.k = b.rows();
  packed.n = b.cols();
  packed.source = b.data();
  ConstView bv{b.data(), b.cols(), 1};
  QuantizePackBInt8(bv, packed.k, packed.n, &packed.panels,
                    &packed.col_scale);
  return packed;
}

void GemmPrepackedInt8(const Matrix& a, const PackedInt8B& packed, Matrix* c,
                       const Config& config) {
  if (a.cols() != packed.k) {
    throw std::invalid_argument("gemm::GemmPrepackedInt8: shape mismatch");
  }
  ConstView av{a.data(), a.cols(), 1};
  Int8ComputeWithPackedB(av, a.rows(), packed.k, packed.n,
                         packed.panels.data(), packed.col_scale.data(), c,
                         config);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* c, const Config& config) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm::Gemm: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemm(a, b, c);
    return;
  }
  ConstView av{a.data(), a.cols(), 1};
  ConstView bv{b.data(), b.cols(), 1};
  GemmView(av, bv, a.rows(), a.cols(), b.cols(), c, config);
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("gemm::GemmTransposeA: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemmTransposeA(a, b, c);
    return;
  }
  // op(A) = A^T: element (i, k) of the view is A(k, i).
  ConstView av{a.data(), 1, a.cols()};
  ConstView bv{b.data(), b.cols(), 1};
  GemmView(av, bv, a.cols(), a.rows(), b.cols(), c, config);
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c,
                    const Config& config) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("gemm::GemmTransposeB: shape mismatch");
  }
  if (config.use_reference) {
    ReferenceGemmTransposeB(a, b, c);
    return;
  }
  // op(B) = B^T: element (k, j) of the view is B(j, k).
  ConstView av{a.data(), a.cols(), 1};
  ConstView bv{b.data(), 1, b.cols()};
  GemmView(av, bv, a.rows(), a.cols(), b.rows(), c, config);
}

void ReferenceGemm(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm::ReferenceGemm: shape mismatch");
  }
  c->Resize(a.rows(), b.cols());
  // i-k-j loop order: streams over contiguous rows of b and c.
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c->Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

void ReferenceGemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("gemm::ReferenceGemmTransposeA: shape mismatch");
  }
  c->Resize(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c->Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
}

void ReferenceGemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("gemm::ReferenceGemmTransposeB: shape mismatch");
  }
  c->Resize(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c->Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

}  // namespace sato::nn::gemm
