#ifndef SATO_NN_LOSS_H_
#define SATO_NN_LOSS_H_

#include <vector>

#include "nn/matrix.h"

namespace sato::nn {

/// Combined softmax + cross-entropy over integer class targets.
/// The split into Forward (loss and probabilities) and Backward (gradient
/// w.r.t. logits) matches the usual fused implementation: the backward pass
/// is simply (softmax - onehot)/batch.
class SoftmaxCrossEntropy {
 public:
  /// Computes mean cross-entropy loss over the batch. `logits` is
  /// [batch, classes]; `targets` holds a class index per row.
  /// Populates probs() with the row-wise softmax.
  double Forward(const Matrix& logits, const std::vector<int>& targets);

  /// Gradient of the mean loss w.r.t. the logits.
  Matrix Backward() const;

  const Matrix& probs() const { return probs_; }

 private:
  Matrix probs_;
  std::vector<int> targets_;
};

/// Row-wise softmax of a logits matrix (stable).
Matrix SoftmaxRows(const Matrix& logits);

/// Row-wise softmax computed in place (stable); lets the inference path
/// normalise workspace-resident logits without allocating.
void SoftmaxRowsInPlace(Matrix* m);

/// Row-wise log-softmax of a logits matrix (stable).
Matrix LogSoftmaxRows(const Matrix& logits);

}  // namespace sato::nn

#endif  // SATO_NN_LOSS_H_
