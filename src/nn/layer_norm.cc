#include "nn/layer_norm.h"

#include <cmath>
#include <stdexcept>

namespace sato::nn {

LayerNorm::LayerNorm(size_t features, double eps)
    : eps_(eps),
      gamma_("ln_gamma", Matrix(1, features, 1.0)),
      beta_("ln_beta", Matrix(1, features, 0.0)) {}

Matrix LayerNorm::Forward(const Matrix& input, bool /*train*/) {
  size_t n = input.rows(), f = input.cols();
  if (f != gamma_.value.cols()) {
    throw std::invalid_argument("LayerNorm: feature mismatch");
  }
  x_hat_ = Matrix(n, f);
  inv_std_.assign(n, 0.0);
  Matrix out(n, f);
  for (size_t r = 0; r < n; ++r) {
    const double* x = input.Row(r);
    double mean = 0.0;
    for (size_t c = 0; c < f; ++c) mean += x[c];
    mean /= static_cast<double>(f);
    double var = 0.0;
    for (size_t c = 0; c < f; ++c) {
      double d = x[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(f);
    double inv_std = 1.0 / std::sqrt(var + eps_);
    inv_std_[r] = inv_std;
    double* xh = x_hat_.Row(r);
    double* o = out.Row(r);
    for (size_t c = 0; c < f; ++c) {
      xh[c] = (x[c] - mean) * inv_std;
      o[c] = gamma_.value(0, c) * xh[c] + beta_.value(0, c);
    }
  }
  return out;
}

const Matrix& LayerNorm::Apply(const Matrix& input, Workspace* ws) const {
  size_t n = input.rows(), f = input.cols();
  if (f != gamma_.value.cols()) {
    throw std::invalid_argument("LayerNorm: feature mismatch");
  }
  Matrix& out = ws->Scratch(n, f);
  for (size_t r = 0; r < n; ++r) {
    const double* x = input.Row(r);
    double mean = 0.0;
    for (size_t c = 0; c < f; ++c) mean += x[c];
    mean /= static_cast<double>(f);
    double var = 0.0;
    for (size_t c = 0; c < f; ++c) {
      double d = x[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(f);
    double inv_std = 1.0 / std::sqrt(var + eps_);
    double* o = out.Row(r);
    for (size_t c = 0; c < f; ++c) {
      o[c] = gamma_.value(0, c) * ((x[c] - mean) * inv_std) + beta_.value(0, c);
    }
  }
  return out;
}

Matrix LayerNorm::Backward(const Matrix& grad_output) {
  size_t n = grad_output.rows(), f = grad_output.cols();
  Matrix grad_input(n, f);
  double inv_f = 1.0 / static_cast<double>(f);
  for (size_t r = 0; r < n; ++r) {
    const double* go = grad_output.Row(r);
    const double* xh = x_hat_.Row(r);
    double sum_g = 0.0, sum_gx = 0.0;
    for (size_t c = 0; c < f; ++c) {
      double g = go[c] * gamma_.value(0, c);
      sum_g += g;
      sum_gx += g * xh[c];
      gamma_.grad(0, c) += go[c] * xh[c];
      beta_.grad(0, c) += go[c];
    }
    double* gi = grad_input.Row(r);
    for (size_t c = 0; c < f; ++c) {
      double g = go[c] * gamma_.value(0, c);
      gi[c] = inv_std_[r] * (g - inv_f * sum_g - xh[c] * inv_f * sum_gx);
    }
  }
  return grad_input;
}

}  // namespace sato::nn
