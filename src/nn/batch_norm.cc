#include "nn/batch_norm.h"

#include <cmath>
#include <stdexcept>

namespace sato::nn {

BatchNorm1d::BatchNorm1d(size_t features, double momentum, double eps)
    : momentum_(momentum), eps_(eps),
      gamma_("gamma", Matrix(1, features, 1.0)),
      beta_("beta", Matrix(1, features, 0.0)),
      running_mean_(1, features, 0.0),
      running_var_(1, features, 1.0) {}

Matrix BatchNorm1d::Forward(const Matrix& input, bool train) {
  last_train_ = train;
  size_t n = input.rows(), f = input.cols();
  if (f != gamma_.value.cols()) {
    throw std::invalid_argument("BatchNorm1d: feature mismatch");
  }
  Matrix mean(1, f), var(1, f);
  if (train && n > 1) {
    mean = input.ColumnMeans();
    for (size_t r = 0; r < n; ++r) {
      const double* row = input.Row(r);
      for (size_t c = 0; c < f; ++c) {
        double d = row[c] - mean(0, c);
        var(0, c) += d * d;
      }
    }
    var *= 1.0 / static_cast<double>(n);
    // Update running statistics (unbiased variance, PyTorch convention).
    double unbias = n > 1 ? static_cast<double>(n) / static_cast<double>(n - 1) : 1.0;
    for (size_t c = 0; c < f; ++c) {
      running_mean_(0, c) =
          (1.0 - momentum_) * running_mean_(0, c) + momentum_ * mean(0, c);
      running_var_(0, c) =
          (1.0 - momentum_) * running_var_(0, c) + momentum_ * var(0, c) * unbias;
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  inv_std_ = Matrix(1, f);
  for (size_t c = 0; c < f; ++c) inv_std_(0, c) = 1.0 / std::sqrt(var(0, c) + eps_);

  x_hat_ = Matrix(n, f);
  Matrix out(n, f);
  for (size_t r = 0; r < n; ++r) {
    const double* in = input.Row(r);
    double* xh = x_hat_.Row(r);
    double* o = out.Row(r);
    for (size_t c = 0; c < f; ++c) {
      xh[c] = (in[c] - mean(0, c)) * inv_std_(0, c);
      o[c] = gamma_.value(0, c) * xh[c] + beta_.value(0, c);
    }
  }
  return out;
}

const Matrix& BatchNorm1d::Apply(const Matrix& input, Workspace* ws) const {
  size_t n = input.rows(), f = input.cols();
  if (f != gamma_.value.cols()) {
    throw std::invalid_argument("BatchNorm1d: feature mismatch");
  }
  // Per-feature scale lives in the workspace too: Apply owns no storage.
  Matrix& inv_std = ws->Scratch(1, f);
  for (size_t c = 0; c < f; ++c) {
    inv_std(0, c) = 1.0 / std::sqrt(running_var_(0, c) + eps_);
  }
  Matrix& out = ws->Scratch(n, f);
  for (size_t r = 0; r < n; ++r) {
    const double* in = input.Row(r);
    double* o = out.Row(r);
    for (size_t c = 0; c < f; ++c) {
      double xh = (in[c] - running_mean_(0, c)) * inv_std(0, c);
      o[c] = gamma_.value(0, c) * xh + beta_.value(0, c);
    }
  }
  return out;
}

Matrix BatchNorm1d::Backward(const Matrix& grad_output) {
  size_t n = grad_output.rows(), f = grad_output.cols();
  Matrix grad_input(n, f);

  // Parameter grads.
  for (size_t r = 0; r < n; ++r) {
    const double* go = grad_output.Row(r);
    const double* xh = x_hat_.Row(r);
    for (size_t c = 0; c < f; ++c) {
      gamma_.grad(0, c) += go[c] * xh[c];
      beta_.grad(0, c) += go[c];
    }
  }

  if (!last_train_ || n <= 1) {
    // Eval-mode backward (running stats treated as constants).
    for (size_t r = 0; r < n; ++r) {
      const double* go = grad_output.Row(r);
      double* gi = grad_input.Row(r);
      for (size_t c = 0; c < f; ++c) {
        gi[c] = go[c] * gamma_.value(0, c) * inv_std_(0, c);
      }
    }
    return grad_input;
  }

  // Train-mode backward through the batch statistics:
  // dx = (gamma * inv_std / n) * (n*dy - sum(dy) - x_hat * sum(dy*x_hat))
  Matrix sum_dy(1, f), sum_dy_xhat(1, f);
  for (size_t r = 0; r < n; ++r) {
    const double* go = grad_output.Row(r);
    const double* xh = x_hat_.Row(r);
    for (size_t c = 0; c < f; ++c) {
      sum_dy(0, c) += go[c];
      sum_dy_xhat(0, c) += go[c] * xh[c];
    }
  }
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const double* go = grad_output.Row(r);
    const double* xh = x_hat_.Row(r);
    double* gi = grad_input.Row(r);
    for (size_t c = 0; c < f; ++c) {
      gi[c] = gamma_.value(0, c) * inv_std_(0, c) * inv_n *
              (static_cast<double>(n) * go[c] - sum_dy(0, c) -
               xh[c] * sum_dy_xhat(0, c));
    }
  }
  return grad_input;
}

}  // namespace sato::nn
