#ifndef SATO_NN_BATCH_NORM_H_
#define SATO_NN_BATCH_NORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace sato::nn {

/// 1-D batch normalisation over the batch dimension with learnable scale
/// (gamma) and shift (beta), tracking running statistics for eval mode --
/// the BatchNorm used by the paper's primary network (§3.1).
class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(size_t features, double momentum = 0.1,
                       double eps = 1e-5);

  Matrix Forward(const Matrix& input, bool train) override;
  /// Normalises with the frozen running statistics (eval semantics).
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "BatchNorm1d"; }

  const Matrix& running_mean() const { return running_mean_; }
  const Matrix& running_var() const { return running_var_; }
  Matrix* mutable_running_mean() { return &running_mean_; }
  Matrix* mutable_running_var() { return &running_var_; }

 private:
  double momentum_, eps_;
  Parameter gamma_;
  Parameter beta_;
  Matrix running_mean_, running_var_;

  // Caches for backward.
  Matrix x_hat_;
  Matrix inv_std_;  // 1 x features
  bool last_train_ = false;
};

}  // namespace sato::nn

#endif  // SATO_NN_BATCH_NORM_H_
