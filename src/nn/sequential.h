#ifndef SATO_NN_SEQUENTIAL_H_
#define SATO_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace sato::nn {

/// Ordered container of layers; forwards through all of them and backwards
/// in reverse. Also usable as a sub-network building block (the paper's
/// per-feature-group "subnetworks").
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a borrowed pointer for convenience.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Matrix Forward(const Matrix& input, bool train) override;
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string name() const override { return "Sequential"; }

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

  /// Forward that also reports the input to the final layer -- the
  /// "column embedding" used by the Fig 10 analysis (activations feeding
  /// the output layer).
  Matrix ForwardWithPenultimate(const Matrix& input, bool train,
                                Matrix* penultimate);

  /// Re-entrant counterpart of ForwardWithPenultimate: `penultimate` is a
  /// caller-owned matrix that receives a copy of the final layer's input.
  const Matrix& ApplyWithPenultimate(const Matrix& input, Workspace* ws,
                                     Matrix* penultimate) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace sato::nn

#endif  // SATO_NN_SEQUENTIAL_H_
