#ifndef SATO_NN_DROPOUT_H_
#define SATO_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"

namespace sato::nn {

/// Inverted dropout: at train time each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); identity at
/// eval time.
class Dropout : public Layer {
 public:
  Dropout(double rate, util::Rng* rng);

  Matrix Forward(const Matrix& input, bool train) override;
  /// Inference dropout is the identity: returns `input` itself, untouched.
  const Matrix& Apply(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string name() const override { return "Dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  util::Rng* rng_;  // not owned
  Matrix mask_;
  bool last_train_ = false;
};

}  // namespace sato::nn

#endif  // SATO_NN_DROPOUT_H_
