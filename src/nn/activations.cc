#include "nn/activations.h"

#include <cmath>

namespace sato::nn {

Matrix ReLU::Forward(const Matrix& input, bool /*train*/) {
  Matrix out = input;
  mask_ = Matrix(input.rows(), input.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] > 0.0) {
      mask_.data()[i] = 1.0;
    } else {
      out.data()[i] = 0.0;
    }
  }
  return out;
}

const Matrix& ReLU::Apply(const Matrix& input, Workspace* ws) const {
  Matrix& out = ws->Scratch(input.rows(), input.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    double v = input.data()[i];
    out.data()[i] = v > 0.0 ? v : 0.0;
  }
  return out;
}

Matrix ReLU::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  grad.HadamardInPlace(mask_);
  return grad;
}

namespace {
constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)
constexpr double kGeluA = 0.044715;

double GeluValue(double x) {
  return 0.5 * x * (1.0 + std::tanh(kGeluC * (x + kGeluA * x * x * x)));
}

double GeluDerivative(double x) {
  double t = std::tanh(kGeluC * (x + kGeluA * x * x * x));
  double dt = (1.0 - t * t) * kGeluC * (1.0 + 3.0 * kGeluA * x * x);
  return 0.5 * (1.0 + t) + 0.5 * x * dt;
}
}  // namespace

Matrix GELU::Forward(const Matrix& input, bool /*train*/) {
  input_cache_ = input;
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = GeluValue(out.data()[i]);
  return out;
}

const Matrix& GELU::Apply(const Matrix& input, Workspace* ws) const {
  Matrix& out = ws->Scratch(input.rows(), input.cols());
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = GeluValue(input.data()[i]);
  return out;
}

Matrix GELU::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] *= GeluDerivative(input_cache_.data()[i]);
  }
  return grad;
}

}  // namespace sato::nn
