// sato_serverd: the network serving daemon. Binds a TCP listener speaking
// the length-prefixed wire protocol (serve/wire.h), serves predictions
// from a hot-swappable ModelRegistry through the shared PredictionService
// micro-batcher, and fronts inference with the content-addressed result
// cache so repeated tables answer without touching a model.
//
//   sato_serverd --demo [--port 7807]        # synthetic bundle, serve
//   sato_serverd path/to/bundle.sato         # serve a trained bundle
//   sato_serverd --self-test                 # loopback E2E smoke, exit 0/1
//
// SIGTERM / SIGINT trigger a graceful drain: in-flight requests finish,
// new connections are refused, then the process exits with a stats line.
// SIGHUP reloads the bundle from disk and republishes it through the
// registry (hot swap: in-flight requests finish on the version they
// pinned). --wal PATH makes corrections crash-safe: the log is replayed
// into the registry on startup (a torn tail is truncated loudly, never
// fatally) and every acknowledged correction is appended before its ack.

#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/model_io.h"
#include "core/sato_model.h"
#include "corpus/generator.h"
#include "serve/correction_wal.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "table/table.h"
#include "util/rng.h"

namespace sato {
namespace {

struct Flags {
  std::string bundle_path;
  bool demo = false;
  bool self_test = false;
  std::string host = "127.0.0.1";
  uint16_t port = 7807;
  size_t max_connections = 64;
  uint64_t tenant_quota = 0;   // 0 = unlimited
  size_t cache_entries = 4096;  // 0 disables the result cache
  size_t cache_shards = 8;
  size_t workers = 2;
  size_t batch = 16;
  uint64_t seed = 71;
  std::string wal_path;  // empty = corrections stay in memory only
  bool wal_fsync = true;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] (--demo | --self-test | <bundle.sato>)\n"
      "  --port N             listen port (default 7807; 0 = ephemeral)\n"
      "  --host H             bind address (default 127.0.0.1)\n"
      "  --max-connections N  concurrent connection bound (default 64)\n"
      "  --quota N            per-tenant predict quota, 0 = unlimited\n"
      "  --cache-entries N    result cache capacity, 0 disables (4096)\n"
      "  --cache-shards N     result cache shards (default 8)\n"
      "  --workers N          prediction worker threads (default 2)\n"
      "  --batch N            max micro-batch size (default 16)\n"
      "  --seed N             corpus/model seed for --demo (default 71)\n"
      "  --wal PATH           correction write-ahead log (replayed on boot)\n"
      "  --wal-no-fsync       skip fsync per WAL append (best effort)\n"
      "  --demo               serve a synthetic untrained bundle\n"
      "  --self-test          loopback end-to-end smoke test, exit 0/1\n",
      argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](uint64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    uint64_t v = 0;
    if (arg == "--demo") {
      flags->demo = true;
    } else if (arg == "--self-test") {
      flags->self_test = true;
      flags->demo = true;  // self-test serves the synthetic bundle
    } else if (arg == "--port" && next(&v)) {
      flags->port = static_cast<uint16_t>(v);
    } else if (arg == "--host" && i + 1 < argc) {
      flags->host = argv[++i];
    } else if (arg == "--max-connections" && next(&v)) {
      flags->max_connections = v;
    } else if (arg == "--quota" && next(&v)) {
      flags->tenant_quota = v;
    } else if (arg == "--cache-entries" && next(&v)) {
      flags->cache_entries = v;
    } else if (arg == "--cache-shards" && next(&v)) {
      flags->cache_shards = v;
    } else if (arg == "--workers" && next(&v)) {
      flags->workers = v;
    } else if (arg == "--batch" && next(&v)) {
      flags->batch = v;
    } else if (arg == "--seed" && next(&v)) {
      flags->seed = v;
    } else if (arg == "--wal" && i + 1 < argc) {
      flags->wal_path = argv[++i];
    } else if (arg == "--wal-no-fsync") {
      flags->wal_fsync = false;
    } else if (!arg.empty() && arg[0] != '-') {
      flags->bundle_path = arg;
    } else {
      return false;
    }
  }
  return flags->demo || !flags->bundle_path.empty();
}

// Publishes a small synthetic bundle (untrained: random but
// seed-deterministic weights -- the full serving path at a fraction of the
// cost) and returns the generated tables so the self-test has real inputs.
std::vector<Table> PublishDemoBundle(serve::ModelRegistry* registry,
                                     uint64_t seed) {
  corpus::CorpusOptions copts;
  copts.num_tables = 60;
  copts.seed = seed;
  corpus::CorpusGenerator generator(copts);
  std::vector<Table> tables = generator.Generate();
  auto reference = generator.GenerateWith(80, seed + 1000003);

  SatoConfig config;
  config.num_topics = 4;
  config.seed = seed;
  util::Rng rng(seed);
  auto context = std::make_shared<FeatureContext>(
      FeatureContext::Build(reference, config, &rng));

  DatasetBuilder builder(context.get());
  Dataset train = builder.Build(tables, &rng);
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  ColumnwiseModel::Dims dims;
  dims.char_dim = context->pipeline().char_dim();
  dims.word_dim = context->pipeline().word_dim();
  dims.para_dim = context->pipeline().para_dim();
  dims.stat_dim = context->pipeline().stat_dim();
  auto model = std::make_shared<SatoModel>(SatoVariant::kFull, dims,
                                           context->topic_dim(), config, &rng);
  registry->Publish(std::move(model), std::move(context), std::move(scaler),
                    "demo-seed" + std::to_string(seed));
  return tables;
}

bool PublishFromBundle(serve::ModelRegistry* registry,
                       const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sato_serverd: cannot open bundle %s\n",
                 path.c_str());
    return false;
  }
  LoadedSato sato;
  try {
    sato = LoadSatoBundle(&in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sato_serverd: bad bundle %s: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  registry->Publish(std::move(sato.model), std::move(sato.context),
                    std::move(sato.scaler), sato.manifest.tag);
  return true;
}

// ---- signal plumbing ------------------------------------------------------

int g_signal_pipe[2] = {-1, -1};

void OnTermSignal(int) {
  char byte = 'T';
  // write() is async-signal-safe; the result is deliberately ignored (a
  // full pipe means a signal is already pending).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void OnHupSignal(int) {
  char byte = 'H';
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

// ---- self test ------------------------------------------------------------

#define SELFTEST_CHECK(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "self-test FAILED at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      return 1;                                                          \
    }                                                                    \
  } while (0)

// Loopback end-to-end battery: framed requests against the live daemon,
// including one malformed frame, then a graceful drain. This is the CI
// smoke path ("start daemon -> 3 framed requests incl. one malformed ->
// assert responses + clean shutdown") in-process so it needs no harness.
int RunSelfTest(serve::Server* server, const std::vector<Table>& tables) {
  const Table* table = nullptr;
  for (const Table& t : tables) {
    if (t.num_columns() >= 2) {
      table = &t;
      break;
    }
  }
  SELFTEST_CHECK(table != nullptr);

  serve::wire::Client client;
  SELFTEST_CHECK(client.Connect(server->host(), server->port()));

  // 1. Liveness.
  serve::wire::ClientResponse pong = client.Ping();
  SELFTEST_CHECK(pong.transport_ok);
  SELFTEST_CHECK(pong.body.status == serve::wire::WireStatus::kOk);

  // 2. A real prediction.
  serve::wire::ClientResponse first = client.Predict(*table, /*seed=*/1);
  SELFTEST_CHECK(first.transport_ok);
  SELFTEST_CHECK(first.body.status == serve::wire::WireStatus::kOk);
  SELFTEST_CHECK(first.body.type_ids.size() == table->num_columns());
  SELFTEST_CHECK(first.body.model_version == 1);

  // 3. Same request again: the result cache must answer byte-identically.
  serve::wire::ClientResponse again = client.Predict(*table, /*seed=*/1);
  SELFTEST_CHECK(again.transport_ok);
  SELFTEST_CHECK(again.body.status == serve::wire::WireStatus::kOk);
  SELFTEST_CHECK(again.body.cache_hit);
  if (again.body.type_ids != first.body.type_ids) {
    std::fprintf(stderr, "first (%zu):", first.body.type_ids.size());
    for (TypeId id : first.body.type_ids) std::fprintf(stderr, " %d", id);
    std::fprintf(stderr, "\nagain (%zu):", again.body.type_ids.size());
    for (TypeId id : again.body.type_ids) std::fprintf(stderr, " %d", id);
    std::fprintf(stderr, "\n");
  }
  SELFTEST_CHECK(again.body.type_ids == first.body.type_ids);

  // 4. A malformed frame on a second connection fails loudly (typed
  //    error, connection closed) without disturbing the first connection.
  {
    serve::wire::Client hostile;
    SELFTEST_CHECK(hostile.Connect(server->host(), server->port()));
    SELFTEST_CHECK(hostile.SendRaw("GARBAGE-NOT-A-FRAME-AT-ALL"));
    serve::wire::ClientResponse err = hostile.ReadResponse();
    SELFTEST_CHECK(err.transport_ok);
    SELFTEST_CHECK(err.body.status == serve::wire::WireStatus::kMalformed);
    serve::wire::ClientResponse eof = hostile.ReadResponse();
    SELFTEST_CHECK(!eof.transport_ok);  // server closed after framing broke
  }
  serve::wire::ClientResponse healthy = client.Predict(*table, /*seed=*/2);
  SELFTEST_CHECK(healthy.transport_ok);
  SELFTEST_CHECK(healthy.body.status == serve::wire::WireStatus::kOk);

  // 5. A correction lands in the registry's correction log.
  serve::wire::ClientResponse corr =
      client.Correct(table->columns()[0].header, /*type=*/3,
                     first.body.model_version);
  SELFTEST_CHECK(corr.transport_ok);
  SELFTEST_CHECK(corr.body.status == serve::wire::WireStatus::kOk);

  // 6. Graceful drain: new connections are refused, the old socket sees
  //    EOF, and shutdown is clean.
  server->RequestDrain();
  server->Shutdown();
  serve::wire::ClientResponse after = client.ReadResponse();
  SELFTEST_CHECK(!after.transport_ok);

  serve::ServerStats stats = server->Stats();
  SELFTEST_CHECK(stats.pings == 1);
  SELFTEST_CHECK(stats.predict_ok == 3);
  SELFTEST_CHECK(stats.cache_hits == 1);
  SELFTEST_CHECK(stats.corrections == 1);
  SELFTEST_CHECK(stats.malformed_frames == 1);
  SELFTEST_CHECK(stats.draining);

  std::printf("self-test passed: %llu frames, %llu responses, "
              "%llu predictions (%llu cached), %llu malformed rejected\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.predict_ok),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.malformed_frames));
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);
  if (flags.self_test) flags.port = 0;  // never collide in CI

  // Declared before the registry: the registry borrows a raw pointer to
  // the WAL, so the appender must outlive it.
  std::unique_ptr<serve::CorrectionWal> wal;
  serve::ModelRegistry registry;
  std::vector<Table> demo_tables;
  if (flags.demo) {
    std::fprintf(stderr, "sato_serverd: building demo bundle (seed %llu)\n",
                 static_cast<unsigned long long>(flags.seed));
    demo_tables = PublishDemoBundle(&registry, flags.seed);
  } else if (!PublishFromBundle(&registry, flags.bundle_path)) {
    return 1;
  }

  if (!flags.wal_path.empty()) {
    // Documented startup order: replay first (heals any torn tail in
    // place), feed the surviving corrections into the registry, THEN
    // attach a fresh appender -- replayed records must not be re-appended.
    serve::WalReplayResult replay =
        serve::CorrectionWal::Replay(flags.wal_path);
    for (serve::Correction& c : replay.corrections) {
      registry.SubmitCorrection(std::move(c));
    }
    std::fprintf(stderr,
                 "sato_serverd: wal %s: replayed %zu correction(s)%s\n",
                 flags.wal_path.c_str(), replay.records,
                 replay.truncated ? " (torn tail truncated)" : "");
    serve::CorrectionWalOptions wopts;
    wopts.fsync =
        flags.wal_fsync ? serve::WalFsync::kAlways : serve::WalFsync::kNone;
    try {
      wal = std::make_unique<serve::CorrectionWal>(flags.wal_path, wopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sato_serverd: %s\n", e.what());
      return 1;
    }
    registry.AttachCorrectionWal(wal.get());
  }

  std::unique_ptr<serve::ResultCache> cache;
  if (flags.cache_entries > 0) {
    serve::ResultCacheOptions copts;
    copts.capacity_entries = flags.cache_entries;
    copts.num_shards = flags.cache_shards;
    cache = std::make_unique<serve::ResultCache>(copts);
  }

  serve::PredictionServiceOptions sopts;
  sopts.num_threads = flags.workers;
  sopts.max_batch_size = flags.batch;
  sopts.result_cache = cache.get();
  serve::PredictionService service(&registry, sopts);

  serve::ServerOptions opts;
  opts.host = flags.host;
  opts.port = flags.port;
  opts.max_connections = flags.max_connections;
  opts.tenant_request_quota = flags.tenant_quota;
  std::unique_ptr<serve::Server> server;
  try {
    server = std::make_unique<serve::Server>(&service, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sato_serverd: %s\n", e.what());
    return 1;
  }

  if (flags.self_test) {
    int rc = RunSelfTest(server.get(), demo_tables);
    server->Shutdown();
    service.Shutdown();
    return rc;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "sato_serverd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  struct sigaction hup {};
  hup.sa_handler = OnHupSignal;
  ::sigaction(SIGHUP, &hup, nullptr);

  std::fprintf(stderr,
               "sato_serverd: listening on %s:%u (model v%llu, %zu workers, "
               "cache %zu entries)\n",
               server->host().c_str(), server->port(),
               static_cast<unsigned long long>(registry.current_version()),
               flags.workers, flags.cache_entries);

  // Park until SIGTERM/SIGINT; SIGHUP hot-reloads the bundle in between.
  for (;;) {
    char byte = 0;
    ssize_t r = ::read(g_signal_pipe[0], &byte, 1);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0 || byte != 'H') break;  // 'T' (or pipe error): drain
    if (flags.bundle_path.empty()) {
      std::fprintf(stderr,
                   "sato_serverd: SIGHUP ignored (no bundle path to "
                   "reload; --demo bundles are synthetic)\n");
      continue;
    }
    const uint64_t old_version = registry.current_version();
    if (!PublishFromBundle(&registry, flags.bundle_path)) {
      std::fprintf(stderr,
                   "sato_serverd: SIGHUP reload failed; still serving "
                   "model v%llu\n",
                   static_cast<unsigned long long>(old_version));
      continue;
    }
    std::fprintf(stderr,
                 "sato_serverd: SIGHUP reloaded %s: model v%llu -> v%llu\n",
                 flags.bundle_path.c_str(),
                 static_cast<unsigned long long>(old_version),
                 static_cast<unsigned long long>(registry.current_version()));
  }

  std::fprintf(stderr, "sato_serverd: draining...\n");
  server->Shutdown();
  service.Shutdown();

  serve::ServerStats stats = server->Stats();
  serve::ServiceStats sstats = service.Stats();
  std::fprintf(
      stderr,
      "sato_serverd: served %llu frames, %llu predictions ok "
      "(%llu cache hits / %llu misses), %llu malformed rejected, "
      "%llu connections\n",
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.predict_ok),
      static_cast<unsigned long long>(sstats.cache_hits),
      static_cast<unsigned long long>(sstats.cache_misses),
      static_cast<unsigned long long>(stats.malformed_frames +
                                      stats.malformed_payloads),
      static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}

}  // namespace
}  // namespace sato

int main(int argc, char** argv) { return sato::Main(argc, argv); }
