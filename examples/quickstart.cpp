// Quickstart: train a Sato model on a synthetic web-table corpus and
// predict the semantic types of an unseen table's columns -- including the
// paper's Fig 1 scenario, where identical column values ('Florence',
// 'Warsaw', 'London', ...) must resolve to `birthPlace` in a biography
// table but `city` in a geography table.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/predictor.h"
#include "core/sato_model.h"
#include "core/trainer.h"
#include "corpus/generator.h"
#include "eval/model_eval.h"

using namespace sato;

namespace {

// A small biography-style table (the paper's Table A) -- note there are no
// usable headers; Sato never sees them.
Table BiographyTable() {
  Table t("tableA");
  Column name;
  name.values = {"Marco Rossi", "Anna Kowalski", "Arthur Lewis",
                 "Hans Weber"};
  Column born;
  born.values = {"1864-02-15", "1867-11-07", "1843-01-04", "1877-04-30"};
  Column place;
  place.values = {"Florence", "Warsaw", "London", "Braunschweig"};
  t.AddColumn(name);
  t.AddColumn(born);
  t.AddColumn(place);
  return t;
}

// A geography-style table (the paper's Table B) whose first column holds
// the *same values* as the biography table's last column.
Table CityTable() {
  Table t("tableB");
  Column city;
  city.values = {"Florence", "Warsaw", "London", "Braunschweig"};
  Column country;
  country.values = {"Italy", "Poland", "England", "Germany"};
  Column area;
  area.values = {"102,320", "517,240", "1,572,000", "192,100"};
  t.AddColumn(city);
  t.AddColumn(country);
  t.AddColumn(area);
  return t;
}

void PredictAndPrint(const SatoPredictor& predictor, const Table& table,
                     util::Rng* rng) {
  std::vector<std::string> types = predictor.PredictTypeNames(table, rng);
  std::printf("%s:\n", table.id().c_str());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf("  column %zu [%s, ...] -> %s\n", c,
                table.column(c).values[0].c_str(), types[c].c_str());
  }
}

}  // namespace

int main() {
  // 1. Synthesise a labeled training corpus (stands in for VizNet
  //    WebTables; see DESIGN.md) plus an unlabeled reference corpus for
  //    pre-training embeddings and the LDA table-intent estimator.
  corpus::CorpusOptions copts;
  copts.num_tables = 1200;
  corpus::CorpusGenerator generator(copts);
  std::vector<Table> corpus = generator.Generate();
  std::vector<Table> reference = generator.GenerateWith(500, 99);

  // 2. Build the shared feature context (word embeddings, TF-IDF, LDA).
  SatoConfig config;
  config.num_topics = 32;
  config.epochs = 25;
  util::Rng rng(7);
  std::printf("Building feature context (embeddings + LDA)...\n");
  FeatureContext context = FeatureContext::Build(reference, config, &rng);

  // 3. Featurise the corpus and train the full Sato model.
  DatasetBuilder builder(&context);
  Dataset train = builder.Build(corpus, &rng);
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  ColumnwiseModel::Dims dims;
  dims.char_dim = context.pipeline().char_dim();
  dims.word_dim = context.pipeline().word_dim();
  dims.para_dim = context.pipeline().para_dim();
  dims.stat_dim = context.pipeline().stat_dim();

  SatoModel model(SatoVariant::kFull, dims, context.topic_dim(), config, &rng);
  std::printf("Training Sato (%zu tables, %zu columns)...\n",
              train.tables.size(), train.NumColumns());
  Trainer trainer(config);
  trainer.Train(&model, train, &rng);

  // 4. Predict types for two unseen tables sharing an ambiguous column.
  //    SatoPredictor featurises raw tables and applies the training-split
  //    feature scaler before decoding.
  SatoPredictor predictor(&model, &context, scaler);
  std::printf("\nThe Fig 1 scenario: identical values, different context.\n\n");
  PredictAndPrint(predictor, BiographyTable(), &rng);
  std::printf("\n");
  PredictAndPrint(predictor, CityTable(), &rng);
  std::printf("\nDone. The place-name column should resolve differently in "
              "the two tables.\n");
  return 0;
}
