// Extensibility: plugging a *different* single-column model into Sato's
// architecture (§3: "One can easily plug in a different single-column
// model while keeping the rest intact"; Fig 4: "the Sato architecture is
// flexible to support unary potentials from arbitrary column-wise models").
//
// Here the column-wise model is the from-scratch Transformer encoder (the
// §6 BERT stand-in). Its softmax scores become the CRF's unary potentials;
// the CRF layer is trained exactly as for the default pipeline, and
// multi-column decoding improves over the raw encoder.
//
// Build & run:
//   ./build/examples/extensibility

#include <cmath>
#include <cstdio>

#include "corpus/generator.h"
#include "crf/crf_trainer.h"
#include "crf/linear_chain_crf.h"
#include "encoder/encoder_trainer.h"
#include "encoder/token_encoder.h"
#include "eval/metrics.h"

using namespace sato;

namespace {

// Unary potentials for a table: log softmax scores from the encoder.
nn::Matrix UnaryFor(const Table& table, encoder::TokenEncoderModel* model) {
  nn::Matrix unary(table.num_columns(), kNumSemanticTypes);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    auto scores = encoder::PredictScores(model, table.column(c));
    for (size_t t = 0; t < scores.size(); ++t) {
      unary(c, t) = std::log(std::max(scores[t], 1e-12));
    }
  }
  return unary;
}

}  // namespace

int main() {
  corpus::CorpusOptions copts;
  copts.num_tables = 900;
  copts.singleton_prob = 0.0;  // every table offers context
  corpus::CorpusGenerator generator(copts);
  auto tables = generator.Generate();
  size_t split = tables.size() * 4 / 5;

  // 1. Train the plug-in column-wise model (Transformer encoder).
  std::vector<const Column*> train_columns;
  std::vector<int> train_labels;
  for (size_t i = 0; i < split; ++i) {
    for (size_t c = 0; c < tables[i].num_columns(); ++c) {
      train_columns.push_back(&tables[i].column(c));
      train_labels.push_back(*tables[i].column(c).type);
    }
  }
  encoder::EncoderConfig config;
  util::Rng rng(5);
  auto vocab =
      encoder::TokenEncoderModel::BuildVocabulary(train_columns, config);
  encoder::TokenEncoderModel model(config, std::move(vocab), &rng);
  std::printf("Training the Transformer column encoder (%zu columns)...\n",
              train_columns.size());
  encoder::EncoderTrainer trainer(config);
  trainer.Train(&model, train_columns, train_labels, &rng);

  // 2. Wrap it with Sato's structured-prediction layer: encoder scores as
  //    unary potentials, pairwise potentials trained on the same split.
  std::printf("Training the CRF layer on encoder unary potentials...\n");
  std::vector<crf::CrfExample> crf_examples;
  std::vector<std::vector<int>> train_sequences;
  for (size_t i = 0; i < split; ++i) {
    if (tables[i].num_columns() < 2) continue;
    crf::CrfExample ex;
    ex.unary = UnaryFor(tables[i], &model);
    ex.labels = tables[i].TypeSequence();
    train_sequences.push_back(ex.labels);
    crf_examples.push_back(std::move(ex));
  }
  crf::LinearChainCrf crf(kNumSemanticTypes);
  crf.InitFromCooccurrence(
      crf::AdjacentCooccurrence(train_sequences, kNumSemanticTypes), 0.1);
  crf::CrfTrainer::Options crf_opts;
  crf_opts.epochs = 10;
  crf::CrfTrainer crf_trainer(crf_opts);
  crf_trainer.Train(&crf, crf_examples, &rng);

  // 3. Compare the raw encoder vs encoder+CRF on held-out tables.
  std::vector<int> gold, plain, structured;
  for (size_t i = split; i < tables.size(); ++i) {
    nn::Matrix unary = UnaryFor(tables[i], &model);
    auto viterbi = crf.Viterbi(unary);
    for (size_t c = 0; c < tables[i].num_columns(); ++c) {
      gold.push_back(*tables[i].column(c).type);
      structured.push_back(viterbi[c]);
      // Raw column-wise argmax.
      const double* row = unary.Row(c);
      int best = 0;
      for (int t = 1; t < kNumSemanticTypes; ++t) {
        if (row[t] > row[best]) best = t;
      }
      plain.push_back(best);
    }
  }
  auto plain_result = eval::Evaluate(gold, plain, kNumSemanticTypes);
  auto structured_result = eval::Evaluate(gold, structured, kNumSemanticTypes);
  std::printf("\n%-32s macro F1 = %.3f, weighted F1 = %.3f\n",
              "Transformer encoder alone:", plain_result.macro_f1,
              plain_result.weighted_f1);
  std::printf("%-32s macro F1 = %.3f, weighted F1 = %.3f\n",
              "encoder + Sato CRF layer:", structured_result.macro_f1,
              structured_result.weighted_f1);
  std::printf("\nThe CRF layer accepts any column-wise model's scores as\n"
              "unary potentials -- the plug-in extensibility Sato claims.\n");
  return 0;
}
