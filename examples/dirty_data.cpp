// Robustness under dirty data -- the failure mode of rule-based detectors
// the paper's introduction calls out ("not robust enough to process dirty
// or missing data").
//
// This example trains Sato once, then evaluates the same test tables under
// increasing corruption (missing cells, typos, case noise) and compares it
// with a simple regex/dictionary detector of the kind commercial tools use.
//
// Build & run:
//   ./build/examples/dirty_data

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/sato_model.h"
#include "core/trainer.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "eval/model_eval.h"
#include "util/string_util.h"

using namespace sato;

namespace {

// A deliberately simple rule-based detector: dictionary lookups over a few
// well-known lexicons and regex-like shape checks, falling back to `name`.
// This is the style of detection the paper attributes to commercial tools.
int RuleBasedDetect(const Column& column) {
  int dates = 0, small_ints = 0, four_digit_years = 0, isbn = 0, mf = 0;
  int non_empty = 0;
  for (const std::string& v : column.values) {
    if (v.empty()) continue;
    ++non_empty;
    if (util::StartsWith(v, "978-")) ++isbn;
    if (v == "M" || v == "F" || util::ToLower(v) == "male" ||
        util::ToLower(v) == "female") {
      ++mf;
    }
    auto num = util::ParseNumeric(v);
    if (num.has_value()) {
      if (*num >= 1900 && *num <= 2025 && v.size() == 4) ++four_digit_years;
      else if (*num >= 0 && *num < 100) ++small_ints;
    }
    if (v.size() == 10 && v[4] == '-' && v[7] == '-') ++dates;
  }
  if (non_empty == 0) return TypeIdOrDie("notes");
  double n = non_empty;
  if (isbn / n > 0.5) return TypeIdOrDie("isbn");
  if (dates / n > 0.5) return TypeIdOrDie("birthDate");
  if (mf / n > 0.5) return TypeIdOrDie("sex");
  if (four_digit_years / n > 0.5) return TypeIdOrDie("year");
  if (small_ints / n > 0.5) return TypeIdOrDie("age");
  return TypeIdOrDie("name");
}

// Corrupts a copy of the tables at the given severity.
std::vector<Table> Corrupt(const std::vector<Table>& tables, double severity,
                           util::Rng* rng) {
  std::vector<Table> out = tables;
  for (Table& t : out) {
    for (size_t ci = 0; ci < t.num_columns(); ++ci) {
      for (std::string& v : t.column(ci).values) {
        if (v.empty()) continue;
        if (rng->Bernoulli(severity * 0.5)) {
          v.clear();  // missing cell
        } else if (rng->Bernoulli(severity) && v.size() >= 3) {
          size_t i = rng->Index(v.size() - 1);
          std::swap(v[i], v[i + 1]);  // typo
        } else if (rng->Bernoulli(severity)) {
          v = rng->Bernoulli(0.5) ? util::ToUpper(v) : util::ToLower(v);
        }
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  corpus::CorpusOptions copts;
  copts.num_tables = 1200;
  corpus::CorpusGenerator generator(copts);
  auto corpus_tables = generator.Generate();
  auto reference = generator.GenerateWith(500, 99);
  // Held-out evaluation tables, clean at generation time.
  corpus::CorpusOptions test_opts = copts;
  test_opts.missing_cell_prob = 0.0;
  test_opts.typo_prob = 0.0;
  test_opts.case_noise_prob = 0.0;
  auto test_tables =
      corpus::FilterMultiColumn(corpus::CorpusGenerator(test_opts).GenerateWith(250, 4242));

  SatoConfig config;
  config.num_topics = 32;
  config.epochs = 25;
  util::Rng rng(7);
  std::printf("Training Sato...\n");
  FeatureContext context = FeatureContext::Build(reference, config, &rng);
  DatasetBuilder builder(&context);
  Dataset train = builder.Build(corpus_tables, &rng);
  Dataset none;
  StandardizeSplits(&train, &none);

  ColumnwiseModel::Dims dims;
  dims.char_dim = context.pipeline().char_dim();
  dims.word_dim = context.pipeline().word_dim();
  dims.para_dim = context.pipeline().para_dim();
  dims.stat_dim = context.pipeline().stat_dim();
  SatoModel model(SatoVariant::kFull, dims, context.topic_dim(), config, &rng);
  Trainer trainer(config);
  trainer.Train(&model, train, &rng);

  std::printf("\n%-10s %-26s %-26s\n", "severity", "Sato (weighted F1)",
              "rule-based (weighted F1)");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');

  // Unscaled training features, reused to refit the scaler per severity so
  // test features are standardised against training statistics only.
  Dataset train_raw = builder.Build(corpus_tables, &rng);

  for (double severity : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    util::Rng noise_rng(31);
    auto corrupted = Corrupt(test_tables, severity, &noise_rng);

    Dataset test = builder.Build(corrupted, &rng);
    Dataset train_copy = train_raw;
    StandardizeSplits(&train_copy, &test);

    std::vector<int> gold, sato_pred, rule_pred;
    eval::PredictDataset(&model, test, &gold, &sato_pred);
    for (const Table& t : corrupted) {
      for (const Column& c : t.columns()) {
        rule_pred.push_back(RuleBasedDetect(c));
      }
    }
    auto sato_result = eval::Evaluate(gold, sato_pred, kNumSemanticTypes);
    auto rule_result = eval::Evaluate(gold, rule_pred, kNumSemanticTypes);
    std::printf("%-10.2f %-26.3f %-26.3f\n", severity,
                sato_result.weighted_f1, rule_result.weighted_f1);
  }
  std::printf("\nSato should degrade gracefully while the rule-based\n"
              "detector collapses on the types it cannot pattern-match.\n");
  return 0;
}
