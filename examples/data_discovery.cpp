// Data discovery / schema matching scenario (the paper's §1 motivation:
// "Schema matching for data integration leverages data types to find
// correspondences between data columns across tables").
//
// A small "data lake" of CSV tables with cryptic, unhelpful headers is
// annotated by Sato; the predicted semantic types are then used to
//   1. answer a discovery query ("find every table with a `city` column"),
//   2. propose join correspondences between tables that share types.
//
// Build & run:
//   ./build/examples/data_discovery

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/predictor.h"
#include "core/sato_model.h"
#include "core/trainer.h"
#include "corpus/generator.h"
#include "table/table.h"

using namespace sato;

namespace {

// CSV tables as they might sit in a data lake: headers are cryptic
// ("col_1", "f2", ...) so header-based matching is hopeless -- exactly the
// situation §1 describes.
const char* kLakeCsvs[] = {
    // hotels
    "c1,c2,c3\n"
    "Grand Plaza,Florence,4\n"
    "Station Inn,Warsaw,3\n"
    "Riverside Hotel,London,5\n"
    "Altstadt Haus,Braunschweig,4\n",
    // offices
    "f1,f2,f3\n"
    "Acme Corporation,Software,Seattle\n"
    "Globex Industries,Manufacturing,Chicago\n"
    "Initech,Finance,Austin\n"
    "Hooli,Software,Denver\n",
    // racing results
    "a,b,c,d\n"
    "J. Smith,1,54,W\n"
    "P. Jones,2,57,L\n"
    "M. Garcia,3,55,W\n"
    "K. Novak,4,56,L\n",
};

Table ParseLakeTable(const std::string& csv, int index) {
  Table t = Table::FromCsv(csv, "lake_" + std::to_string(index));
  return t;
}

}  // namespace

int main() {
  // Train Sato on the synthetic corpus (identical recipe to quickstart).
  corpus::CorpusOptions copts;
  copts.num_tables = 1200;
  corpus::CorpusGenerator generator(copts);
  auto corpus_tables = generator.Generate();
  auto reference = generator.GenerateWith(500, 99);

  SatoConfig config;
  config.num_topics = 32;
  config.epochs = 25;
  util::Rng rng(7);
  std::printf("Training Sato for the data-lake annotation scenario...\n");
  FeatureContext context = FeatureContext::Build(reference, config, &rng);
  DatasetBuilder builder(&context);
  Dataset train = builder.Build(corpus_tables, &rng);
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  ColumnwiseModel::Dims dims;
  dims.char_dim = context.pipeline().char_dim();
  dims.word_dim = context.pipeline().word_dim();
  dims.para_dim = context.pipeline().para_dim();
  dims.stat_dim = context.pipeline().stat_dim();
  SatoModel model(SatoVariant::kFull, dims, context.topic_dim(), config, &rng);
  Trainer trainer(config);
  trainer.Train(&model, train, &rng);
  SatoPredictor predictor(&model, &context, scaler);

  // Annotate the lake.
  std::printf("\nAnnotating %zu data-lake tables with cryptic headers...\n\n",
              std::size(kLakeCsvs));
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> type_index;
  for (size_t i = 0; i < std::size(kLakeCsvs); ++i) {
    Table t = ParseLakeTable(kLakeCsvs[i], static_cast<int>(i));
    std::vector<std::string> types = predictor.PredictTypeNames(t, &rng);
    std::printf("%s:\n", t.id().c_str());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      std::printf("  %-6s -> %-14s (e.g. \"%s\")\n",
                  t.column(c).header.c_str(), types[c].c_str(),
                  t.column(c).values[0].c_str());
      type_index[types[c]].emplace_back(t.id(), c);
    }
    std::printf("\n");
  }

  // Discovery query.
  std::printf("Discovery query: tables containing a `city` column:\n");
  for (const auto& [table, col] : type_index["city"]) {
    std::printf("  %s (column %zu)\n", table.c_str(), col);
  }

  // Join correspondences: any semantic type appearing in >1 table.
  std::printf("\nProposed join correspondences (shared semantic types):\n");
  for (const auto& [type, sites] : type_index) {
    if (sites.size() < 2) continue;
    std::printf("  type `%s`:", type.c_str());
    for (const auto& [table, col] : sites) {
      std::printf("  %s.col%zu", table.c_str(), col);
    }
    std::printf("\n");
  }
  return 0;
}
