// sato_cli: command-line interface over the library, covering the full
// train -> persist -> annotate lifecycle a practitioner needs.
//
//   sato_cli train <bundle>                 train on the synthetic corpus and
//                                           save a deployable bundle
//   sato_cli predict <bundle> <csv>...      annotate CSV tables (headers are
//                                           ignored for prediction)
//   sato_cli eval <bundle>                  evaluate the bundle on a freshly
//                                           generated held-out corpus
//   sato_cli serve-sim <bundle>             drive the online PredictionService
//                                           with closed-loop simulated clients
//   sato_cli types                          list the supported types
//
// Options for `train`: --tables N, --topics K, --epochs E, --variant
// base|notopic|nostruct|full, --seed S.
//
// `predict` and `eval` accept --jobs N to decode tables on N worker
// threads through the BatchPredictor; output is identical for any N.
//
// `predict`, `eval` and `serve-sim` accept --int8 to request the
// quantized GEMM inference path. The request is gated: the CLI first
// evaluates the bundle on a held-out synthetic corpus with the fp64 and
// the int8 kernels and only selects int8 when the macro-F1 degradation
// is within --int8-epsilon (default 0.01); otherwise it warns and stays
// on fp64. See eval::RunInt8AccuracyGate.
//
// `serve-sim` accepts --jobs N (prediction workers), --clients C
// (concurrent closed-loop clients), --batch B (max micro-batch size),
// --delay-us D (micro-batch flush deadline), --capacity Q (admission
// bound) and --swap-every N (publish a new model version to the registry
// every N submissions, exercising the RCU hot-swap path under live
// traffic). It reports latency percentiles, the achieved batch-size
// histogram and the per-version served counts, then audits every response
// against a sequential SatoPredictor run on its reported model version --
// the online determinism contract, per version.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "core/sato_model.h"
#include "core/trainer.h"
#include "corpus/generator.h"
#include "eval/model_eval.h"
#include "nn/gemm.h"
#include "serve/batch_predictor.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "util/timer.h"

using namespace sato;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sato_cli train <bundle> [--tables N] [--topics K] [--epochs E]\n"
               "                 [--variant base|notopic|nostruct|full] [--seed S]\n"
               "  sato_cli predict <bundle> [--jobs N] [--int8]\n"
               "                 [--int8-epsilon E] <table.csv>...\n"
               "  sato_cli eval <bundle> [--tables N] [--seed S] [--jobs N]\n"
               "                 [--int8] [--int8-epsilon E]\n"
               "  sato_cli serve-sim <bundle> [--tables N] [--seed S] [--jobs N]\n"
               "                 [--clients C] [--batch B] [--delay-us D]\n"
               "                 [--capacity Q] [--swap-every N]\n"
               "                 [--int8] [--int8-epsilon E]\n"
               "  sato_cli types\n");
  return 2;
}

struct Flags {
  size_t tables = 1200;
  int topics = 32;
  int epochs = 25;
  uint64_t seed = 7;
  int jobs = 1;
  int clients = 4;        // serve-sim: concurrent closed-loop clients
  int batch = 8;          // serve-sim: max micro-batch size
  int delay_us = 500;     // serve-sim: micro-batch flush deadline
  int capacity = 1024;    // serve-sim: bounded admission queue
  int swap_every = 0;     // serve-sim: publish a new version every N submits
  bool int8 = false;      // request the quantized GEMM path (gated)
  double int8_epsilon = 0.01;  // largest acceptable macro-F1 degradation
  SatoVariant variant = SatoVariant::kFull;
};

// Parses --flag arguments starting at argv[start]. When `positional` is
// non-null, non-flag arguments are collected there (e.g. the CSV paths of
// `predict`); otherwise they are rejected.
bool ParseFlags(int argc, char** argv, int start, Flags* flags,
                std::vector<std::string>* positional = nullptr) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tables") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->tables = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--topics") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->topics = std::atoi(v);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->epochs = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->jobs = std::atoi(v);
      if (flags->jobs < 1) return false;
    } else if (arg == "--clients") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->clients = std::atoi(v);
      if (flags->clients < 1) return false;
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->batch = std::atoi(v);
      if (flags->batch < 1) return false;
    } else if (arg == "--delay-us") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->delay_us = std::atoi(v);
      if (flags->delay_us < 0) return false;
    } else if (arg == "--capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->capacity = std::atoi(v);
      if (flags->capacity < 1) return false;
    } else if (arg == "--swap-every") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->swap_every = std::atoi(v);
      if (flags->swap_every < 0) return false;
    } else if (arg == "--int8") {
      flags->int8 = true;
    } else if (arg == "--int8-epsilon") {
      const char* v = next();
      if (v == nullptr) return false;
      flags->int8_epsilon = std::strtod(v, nullptr);
      if (flags->int8_epsilon < 0.0) return false;
    } else if (arg == "--variant") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string name = v;
      if (name == "base") flags->variant = SatoVariant::kBase;
      else if (name == "notopic") flags->variant = SatoVariant::kNoTopic;
      else if (name == "nostruct") flags->variant = SatoVariant::kNoStruct;
      else if (name == "full") flags->variant = SatoVariant::kFull;
      else return false;
    } else if (positional != nullptr && arg.rfind("--", 0) != 0) {
      positional->push_back(std::move(arg));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int CmdTypes() {
  const auto& registry = SemanticTypeRegistry::Instance();
  for (TypeId id = 0; id < registry.size(); ++id) {
    std::printf("%2d  %s\n", id, registry.Name(id).c_str());
  }
  return 0;
}

int CmdTrain(const std::string& bundle_path, const Flags& flags) {
  util::Timer timer;
  corpus::CorpusOptions copts;
  copts.num_tables = flags.tables;
  copts.seed = flags.seed;
  corpus::CorpusGenerator generator(copts);
  auto corpus_tables = generator.Generate();
  auto reference =
      generator.GenerateWith(std::max<size_t>(flags.tables / 3, 200),
                             flags.seed + 1000003);
  std::fprintf(stderr, "[%.1fs] corpus: %zu tables\n", timer.ElapsedSeconds(),
               corpus_tables.size());

  SatoConfig config;
  config.num_topics = flags.topics;
  config.epochs = flags.epochs;
  config.seed = flags.seed;
  util::Rng rng(flags.seed);
  FeatureContext context = FeatureContext::Build(reference, config, &rng);
  std::fprintf(stderr, "[%.1fs] context built (vocab=%zu, topics=%zu)\n",
               timer.ElapsedSeconds(), context.embeddings().vocab_size(),
               context.topic_dim());

  DatasetBuilder builder(&context);
  Dataset train = builder.Build(corpus_tables, &rng);
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);
  std::fprintf(stderr, "[%.1fs] featurised %zu columns\n",
               timer.ElapsedSeconds(), train.NumColumns());

  ColumnwiseModel::Dims dims;
  dims.char_dim = context.pipeline().char_dim();
  dims.word_dim = context.pipeline().word_dim();
  dims.para_dim = context.pipeline().para_dim();
  dims.stat_dim = context.pipeline().stat_dim();
  SatoModel model(flags.variant, dims, context.topic_dim(), config, &rng);
  Trainer trainer(config);
  auto stats = trainer.Train(&model, train, &rng);
  std::fprintf(stderr, "[%.1fs] trained %s (loss %.3f, crf %.1fs)\n",
               timer.ElapsedSeconds(), VariantName(flags.variant).c_str(),
               stats.final_loss, stats.crf_seconds);

  std::ofstream out(bundle_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", bundle_path.c_str());
    return 1;
  }
  const std::string tag =
      VariantName(flags.variant) + "-seed" + std::to_string(flags.seed);
  SaveSatoBundle(model, context, scaler, &out, tag);
  std::fprintf(stderr, "[%.1fs] bundle saved to %s (tag %s)\n",
               timer.ElapsedSeconds(), bundle_path.c_str(), tag.c_str());
  return 0;
}

LoadedSato LoadBundleOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open bundle %s\n", path.c_str());
    std::exit(1);
  }
  return LoadSatoBundle(&in);
}

// Moves a loaded bundle's components into the registry as version 1. The
// CLI serves pinned snapshots of this registry from here on -- the same
// ownership discipline as a long-running deployment, where the loaded
// model's lifetime is governed by pins rather than by scope.
std::shared_ptr<const serve::ModelBundle> PublishLoaded(
    serve::ModelRegistry* registry, LoadedSato* sato) {
  std::shared_ptr<const SatoModel> model = std::move(sato->model);
  std::shared_ptr<const FeatureContext> context = std::move(sato->context);
  return registry->Publish(std::move(model), std::move(context), sato->scaler,
                           sato->manifest.tag);
}

// Gated selection of the quantized GEMM path. Evaluates the bundle on a
// freshly generated held-out corpus (seed-disjoint from training and from
// the command's own tables) with fp64 and with int8; only a macro-F1
// degradation within --int8-epsilon switches the process default config
// to int8. On failure the fp64 path stays selected and we warn -- the
// command still runs, just unquantized.
void MaybeSelectInt8(const std::shared_ptr<const serve::ModelBundle>& bundle,
                     const Flags& flags) {
  if (!flags.int8) return;
  corpus::CorpusOptions copts;
  copts.num_tables = 100;
  copts.seed = flags.seed + 777777;
  corpus::CorpusGenerator generator(copts);
  auto gate_tables = corpus::FilterMultiColumn(generator.Generate());
  eval::Int8GateResult gate = eval::RunInt8AccuracyGate(
      bundle, gate_tables, /*seed=*/2, flags.int8_epsilon);
  if (gate.passed) {
    nn::gemm::Config config = nn::gemm::DefaultConfig();
    config.use_int8 = true;
    nn::gemm::SetDefaultConfig(config);
    std::fprintf(stderr,
                 "int8 gate PASSED (fp64 macro-F1 %.4f, int8 %.4f, delta "
                 "%.4f <= epsilon %.4f): serving quantized kernel %s\n",
                 gate.fp64_macro_f1, gate.int8_macro_f1, gate.delta,
                 gate.epsilon, nn::gemm::KernelName().c_str());
  } else {
    std::fprintf(stderr,
                 "WARNING: int8 gate FAILED (fp64 macro-F1 %.4f, int8 %.4f, "
                 "delta %.4f > epsilon %.4f): staying on fp64\n",
                 gate.fp64_macro_f1, gate.int8_macro_f1, gate.delta,
                 gate.epsilon);
  }
}

int CmdPredict(const std::string& bundle_path,
               const std::vector<std::string>& csv_paths, const Flags& flags) {
  const int jobs = flags.jobs;
  LoadedSato sato = LoadBundleOrDie(bundle_path);

  bool any_failed = false;
  std::vector<std::string> loaded_paths;
  std::vector<Table> tables;
  for (const std::string& path : csv_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      any_failed = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Table table = Table::FromCsv(buffer.str(), path);
    if (table.num_columns() == 0) {
      std::fprintf(stderr, "%s: empty table\n", path.c_str());
      continue;
    }
    loaded_paths.push_back(path);
    tables.push_back(std::move(table));
  }

  // Table i decodes with the Rng stream TableSeed(1, i), so the output is
  // identical for any --jobs value. The loaded model is published into a
  // registry and served from a pinned bundle snapshot; with one job the
  // bundle's predictor serves directly, with more the BatchPredictor fans
  // out over worker scratches.
  constexpr uint64_t kPredictSeed = 1;
  serve::ModelRegistry registry;
  std::shared_ptr<const serve::ModelBundle> bundle =
      PublishLoaded(&registry, &sato);
  MaybeSelectInt8(bundle, flags);
  std::vector<std::vector<std::string>> names;
  if (jobs == 1) {
    names.reserve(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      util::Rng rng(serve::BatchPredictor::TableSeed(kPredictSeed, i));
      names.push_back(bundle->predictor().PredictTypeNames(tables[i], &rng));
    }
  } else {
    serve::BatchPredictorOptions options;
    options.num_threads = static_cast<size_t>(jobs);
    options.seed = kPredictSeed;
    serve::BatchPredictor batch(bundle, options);
    names = batch.PredictTypeNames(tables);
  }

  for (size_t i = 0; i < tables.size(); ++i) {
    const Table& table = tables[i];
    std::printf("%s:\n", loaded_paths[i].c_str());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const char* sample =
          table.column(c).values.empty() ? "" : table.column(c).values[0].c_str();
      std::printf("  %-20s -> %-16s (e.g. \"%s\")\n",
                  table.column(c).header.c_str(), names[i][c].c_str(), sample);
    }
  }
  return any_failed ? 1 : 0;
}

int CmdEval(const std::string& bundle_path, const Flags& flags) {
  LoadedSato sato = LoadBundleOrDie(bundle_path);
  corpus::CorpusOptions copts;
  copts.num_tables = std::max<size_t>(flags.tables / 4, 100);
  copts.seed = flags.seed + 424242;  // disjoint from any training seed
  corpus::CorpusGenerator generator(copts);
  auto tables = corpus::FilterMultiColumn(generator.Generate());

  // Same seed-stream discipline as CmdPredict: identical metrics for any
  // --jobs value. Both paths evaluate a pinned bundle snapshot.
  constexpr uint64_t kEvalSeed = 3;
  serve::ModelRegistry registry;
  std::shared_ptr<const serve::ModelBundle> bundle =
      PublishLoaded(&registry, &sato);
  MaybeSelectInt8(bundle, flags);
  eval::EvaluationResult result;
  size_t columns = 0;
  if (flags.jobs == 1) {
    result = eval::EvaluateBundleOnTables(bundle, tables, kEvalSeed);
    for (const Table& table : tables) columns += table.num_columns();
  } else {
    serve::BatchPredictorOptions options;
    options.num_threads = static_cast<size_t>(flags.jobs);
    options.seed = kEvalSeed;
    serve::BatchPredictor batch(bundle, options);
    std::vector<std::vector<TypeId>> predictions = batch.PredictTables(tables);
    std::vector<int> gold, predicted;
    for (size_t i = 0; i < tables.size(); ++i) {
      auto truth = tables[i].TypeSequence();
      gold.insert(gold.end(), truth.begin(), truth.end());
      predicted.insert(predicted.end(), predictions[i].begin(),
                       predictions[i].end());
    }
    result = eval::Evaluate(gold, predicted, kNumSemanticTypes);
    columns = gold.size();
  }
  std::printf("evaluated %zu tables (%zu columns)\n", tables.size(), columns);
  std::printf("macro F1:    %.3f\n", result.macro_f1);
  std::printf("weighted F1: %.3f\n", result.weighted_f1);
  std::printf("accuracy:    %.3f\n", result.accuracy);
  return 0;
}

// Closed-loop load simulation against the online serving frontend: each of
// --clients threads owns an interleaved slice of the corpus and submits its
// next table only after the previous response arrived, so the offered
// concurrency is exactly --clients. With --swap-every N, every Nth submit
// publishes a new registry version (same weights, new version id), so the
// hot-swap path runs under the live load. Afterwards every response is
// audited against a sequential SatoPredictor run with the same per-request
// seed on its reported model version -- the determinism-under-batching
// contract, per version, end to end on a real clock.
int CmdServeSim(const std::string& bundle_path, const Flags& flags) {
  LoadedSato sato = LoadBundleOrDie(bundle_path);
  corpus::CorpusOptions copts;
  copts.num_tables = std::max<size_t>(flags.tables / 4, 100);
  copts.seed = flags.seed + 515151;  // disjoint from any training seed
  corpus::CorpusGenerator generator(copts);
  auto tables = corpus::FilterMultiColumn(generator.Generate());

  serve::ModelRegistry registry;
  std::shared_ptr<const serve::ModelBundle> bundle =
      PublishLoaded(&registry, &sato);
  // Select before workers start -- SetDefaultConfig is unsynchronised, and
  // the audit below re-predicts through the same process default, so both
  // sides of the determinism check run the same kernel.
  MaybeSelectInt8(bundle, flags);

  serve::PredictionServiceOptions options;
  options.num_threads = static_cast<size_t>(flags.jobs);
  options.max_batch_size = static_cast<size_t>(flags.batch);
  options.max_queue_delay_nanos =
      static_cast<uint64_t>(flags.delay_us) * 1000ULL;
  options.queue_capacity = static_cast<size_t>(flags.capacity);
  serve::PredictionService service(&registry, options);

  constexpr uint64_t kSimSeed = 1;
  const size_t num_clients = static_cast<size_t>(flags.clients);
  std::vector<serve::PredictionResult> responses(tables.size());
  std::atomic<uint64_t> submitted{0};
  util::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < tables.size(); i += num_clients) {
        // Republish every Nth submission: in this simulation the "new"
        // version shares the weights (there is one trained model on disk),
        // so the audit below can use one oracle for every version while
        // still exercising publish/pin/attribution under live traffic.
        if (flags.swap_every > 0 &&
            ++submitted % static_cast<uint64_t>(flags.swap_every) == 0) {
          registry.Publish(bundle->model_ptr(), bundle->context_ptr(),
                           bundle->scaler());
        }
        serve::PredictionHandle handle = service.Submit(
            tables[i], serve::BatchPredictor::TableSeed(kSimSeed, i));
        responses[i] = handle.Get();
      }
    });
  }
  for (auto& client : clients) client.join();
  double seconds = timer.ElapsedSeconds();
  service.Shutdown();
  serve::ServiceStats stats = service.Stats();
  const uint64_t published = registry.current_version();

  // Per-version determinism audit: every kOk response must report a
  // version the registry actually published, and must be byte-identical
  // to the sequential predictor with the same seed on those weights.
  size_t mismatches = 0;
  size_t bad_versions = 0;
  size_t ok = 0;
  std::vector<size_t> per_version(published + 1, 0);
  for (size_t i = 0; i < tables.size(); ++i) {
    if (responses[i].status != serve::RequestStatus::kOk) continue;
    ++ok;
    if (responses[i].model_version == 0 ||
        responses[i].model_version > published) {
      ++bad_versions;
      continue;
    }
    ++per_version[responses[i].model_version];
    util::Rng rng(serve::BatchPredictor::TableSeed(kSimSeed, i));
    if (responses[i].type_ids !=
        bundle->predictor().PredictTable(tables[i], &rng)) {
      ++mismatches;
    }
  }

  std::printf("serve-sim: %zu tables, %zu clients, %d workers, batch<=%d, "
              "deadline %dus, capacity %d, swap-every %d\n",
              tables.size(), num_clients, flags.jobs, flags.batch,
              flags.delay_us, flags.capacity, flags.swap_every);
  std::printf("  completed %llu (ok %zu), rejected %llu, throughput %.1f "
              "tables/sec\n",
              static_cast<unsigned long long>(stats.completed), ok,
              static_cast<unsigned long long>(stats.rejected),
              static_cast<double>(stats.completed) / seconds);
  std::printf("  versions published %llu, swaps observed %llu, served by "
              "version:",
              static_cast<unsigned long long>(published),
              static_cast<unsigned long long>(stats.model_swaps));
  for (uint64_t v = 1; v <= published; ++v) {
    if (per_version[v] == 0) continue;
    std::printf(" v%llu=%zu", static_cast<unsigned long long>(v),
                per_version[v]);
  }
  std::printf("\n");
  std::printf("  latency p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
              static_cast<double>(stats.latency_p50_nanos) / 1e6,
              static_cast<double>(stats.latency_p95_nanos) / 1e6,
              static_cast<double>(stats.latency_p99_nanos) / 1e6);
  std::printf("  batch sizes:");
  for (size_t s = 1; s < stats.batch_size_histogram.size(); ++s) {
    if (stats.batch_size_histogram[s] == 0) continue;
    std::printf(" %zux%llu", s,
                static_cast<unsigned long long>(stats.batch_size_histogram[s]));
  }
  std::printf("  (%llu batches)\n",
              static_cast<unsigned long long>(stats.batches));
  if (mismatches != 0 || bad_versions != 0) {
    std::printf("  determinism check FAILED: %zu/%zu responses differ from "
                "the sequential predictor, %zu report unpublished versions\n",
                mismatches, ok, bad_versions);
    return 1;
  }
  std::printf("  determinism check OK: %zu/%zu responses byte-identical to "
              "the sequential predictor, all versions published\n",
              ok, ok);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "types") return CmdTypes();
  if (command == "train") {
    if (argc < 3) return Usage();
    Flags flags;
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return CmdTrain(argv[2], flags);
  }
  if (command == "predict") {
    if (argc < 4) return Usage();
    Flags flags;
    std::vector<std::string> paths;
    if (!ParseFlags(argc, argv, 3, &flags, &paths)) return Usage();
    if (paths.empty()) return Usage();
    return CmdPredict(argv[2], paths, flags);
  }
  if (command == "eval") {
    if (argc < 3) return Usage();
    Flags flags;
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return CmdEval(argv[2], flags);
  }
  if (command == "serve-sim") {
    if (argc < 3) return Usage();
    Flags flags;
    if (!ParseFlags(argc, argv, 3, &flags)) return Usage();
    return CmdServeSim(argv[2], flags);
  }
  return Usage();
}
