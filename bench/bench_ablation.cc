// Ablation benches for the design choices DESIGN.md calls out:
//   1. CRF pairwise initialisation: co-occurrence counts (§4.3) vs zeros.
//   2. CRF training epochs (0 = decode with initialisation only).
//   3. Topic dimensionality sweep (the paper fixes 400 at full scale; the
//      sweep shows sensitivity of the topic-aware model to this dial).
//   4. First-order vs second-order (skip-chain) decoding -- the broader
//      local context the paper defers to future work (§3.3/§6), with the
//      O(K^2) -> O(K^3) decode cost it predicts.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "crf/skip_chain_decoder.h"
#include "eval/model_eval.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

void RunCrfInitAblation(const BenchEnv& env, const Split& split) {
  std::printf("--- Ablation 1: CRF pairwise initialisation (Sato) ---\n");
  std::printf("  %-26s %-10s %-12s\n", "init", "macro F1", "weighted F1");
  PrintRule(50);
  for (double scale : {0.0, env.config.crf_init_scale}) {
    SatoConfig config = env.config;
    config.crf_init_scale = scale;
    util::Rng rng(66);
    SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                    config, &rng);
    Trainer trainer(config);
    trainer.Train(&model, split.train, &rng);
    auto r = eval::EvaluateModel(&model, split.test);
    std::printf("  %-26s %-10.3f %-12.3f\n",
                scale == 0.0 ? "zeros" : "co-occurrence (paper)", r.macro_f1,
                r.weighted_f1);
  }
  PrintRule(50);
  std::printf("\n");
}

void RunSkipChainAblation(const BenchEnv& env, const Split& split) {
  std::printf("--- Ablation 4: second-order (skip-chain) decoding (Sato) ---\n");
  util::Rng rng(66);
  SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                  env.config, &rng);
  Trainer trainer(env.config);
  trainer.Train(&model, split.train, &rng);

  // Skip potentials from distance-2 co-occurrence on the training split.
  nn::Matrix skip = crf::SkipChainDecoder::SkipCooccurrenceInit(
      split.train.LabelSequences(), kNumSemanticTypes,
      env.config.crf_init_scale);
  crf::SkipChainDecoder decoder(&model.crf(), skip);

  std::vector<int> gold, first_order, second_order;
  util::Timer t1;
  double first_seconds = 0.0, second_seconds = 0.0;
  for (const TableExample& table : split.test.tables) {
    nn::Matrix probs = model.PredictProbs(table);
    nn::Matrix unary(probs.rows(), probs.cols());
    for (size_t i = 0; i < probs.size(); ++i) {
      unary.data()[i] = std::log(std::max(probs.data()[i], 1e-12));
    }
    t1.Reset();
    auto v1 = model.crf().Viterbi(unary);
    first_seconds += t1.ElapsedSeconds();
    t1.Reset();
    auto v2 = decoder.Decode(unary);
    second_seconds += t1.ElapsedSeconds();
    gold.insert(gold.end(), table.labels.begin(), table.labels.end());
    first_order.insert(first_order.end(), v1.begin(), v1.end());
    second_order.insert(second_order.end(), v2.begin(), v2.end());
  }
  auto r1 = eval::Evaluate(gold, first_order, kNumSemanticTypes);
  auto r2 = eval::Evaluate(gold, second_order, kNumSemanticTypes);
  std::printf("  %-26s %-10s %-12s %-12s\n", "decoder", "macro F1",
              "weighted F1", "decode [s]");
  PrintRule(64);
  std::printf("  %-26s %-10.3f %-12.3f %-12.3f\n", "first-order (paper)",
              r1.macro_f1, r1.weighted_f1, first_seconds);
  std::printf("  %-26s %-10.3f %-12.3f %-12.3f\n", "skip-chain (2nd order)",
              r2.macro_f1, r2.weighted_f1, second_seconds);
  PrintRule(64);
  std::printf("  decode cost ratio: %.1fx (the K^2 -> K^3 growth of Sec 6)\n\n",
              first_seconds > 0 ? second_seconds / first_seconds : 0.0);
}

void RunCrfEpochAblation(const BenchEnv& env, const Split& split) {
  std::printf("--- Ablation 2: CRF training epochs (Sato) ---\n");
  std::printf("  %-10s %-10s %-12s\n", "epochs", "macro F1", "weighted F1");
  PrintRule(36);
  for (int epochs : {0, 2, 5, env.config.crf_epochs}) {
    SatoConfig config = env.config;
    config.crf_epochs = epochs;
    util::Rng rng(66);
    SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                    config, &rng);
    Trainer trainer(config);
    trainer.Train(&model, split.train, &rng);
    auto r = eval::EvaluateModel(&model, split.test);
    std::printf("  %-10d %-10.3f %-12.3f\n", epochs, r.macro_f1, r.weighted_f1);
  }
  PrintRule(36);
  std::printf("\n");
}

}  // namespace
}  // namespace sato::bench

int main() {
  using namespace sato::bench;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  std::printf("=== Ablations: design choices ===\n\n");
  RunCrfInitAblation(env, split);
  RunCrfEpochAblation(env, split);
  RunSkipChainAblation(env, split);

  // 3. Topic dimensionality sweep. Requires re-training LDA per setting,
  // so it reuses the corpus but builds fresh contexts.
  std::printf("--- Ablation 3: topic dimensionality (Sato_noStruct) ---\n");
  std::printf("  %-10s %-10s %-12s\n", "topics", "macro F1", "weighted F1");
  PrintRule(36);
  sato::corpus::CorpusOptions copts;
  copts.num_tables = env.scale.reference_tables;
  copts.seed = 7 + 1000003;
  sato::corpus::CorpusGenerator gen(copts);
  auto reference = gen.Generate();
  for (int topics : {8, 16, 32, 64}) {
    sato::SatoConfig config = env.config;
    config.num_topics = topics;
    sato::util::Rng rng(77);
    sato::FeatureContext context =
        sato::FeatureContext::Build(reference, config, &rng);
    sato::DatasetBuilder builder(&context);
    sato::Dataset all = builder.Build(env.tables_dmult, &rng);
    sato::util::Rng fold_rng2(99);
    auto folds2 = sato::eval::KFold(all.tables.size(), 5, &fold_rng2);
    sato::Dataset train = Subset(all, folds2[0].train);
    sato::Dataset test = Subset(all, folds2[0].test);
    sato::StandardizeSplits(&train, &test);

    sato::ColumnwiseModel::Dims dims = env.dims;
    sato::SatoModel model(sato::SatoVariant::kNoStruct, dims,
                          context.topic_dim(), config, &rng);
    sato::Trainer trainer(config);
    trainer.Train(&model, train, &rng);
    auto r = sato::eval::EvaluateModel(&model, test);
    std::printf("  %-10d %-10.3f %-12.3f\n", topics, r.macro_f1,
                r.weighted_f1);
  }
  PrintRule(36);
  return 0;
}
