// Featurization benchmark: the tokenize-once fast path (TokenCache +
// id-based extractor kernels + flat-phi LDA fold-in) against the preserved
// Reference* extractors, over the synthetic corpus at the configured
// SATO_BENCH_SCALE.
//
// Reports per-group extractor ns/column, LDA fold-in ns/table, and the
// end-to-end featurization cost (four groups + topic vector) both ways,
// then writes the whole table to BENCH_features.json (schema in
// docs/BENCHMARKS.md) -- the featurization counterpart of BENCH_gemm.json
// and BENCH_serve.json.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "embedding/token_cache.h"
#include "features/char_features.h"
#include "features/config.h"
#include "features/feature_scratch.h"
#include "features/para_features.h"
#include "features/pipeline.h"
#include "features/stat_features.h"
#include "features/word_features.h"
#include "topic/table_document.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

struct StageResult {
  const char* stage;
  const char* unit;       // "column" or "table"
  double ref_sec;         // whole-corpus seconds, reference path (0 = n/a)
  double fast_sec;        // whole-corpus seconds, fast path
};

double PerUnitNs(double sec, size_t units) {
  return units == 0 ? 0.0 : sec * 1e9 / static_cast<double>(units);
}

void WriteJson(const char* path, const BenchEnv& env, size_t num_tables,
               size_t num_columns, const std::vector<StageResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_features: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"features\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", env.scale.name.c_str());
  std::fprintf(f, "  \"tables\": %zu,\n", num_tables);
  std::fprintf(f, "  \"columns\": %zu,\n", num_columns);
  std::fprintf(f, "  \"embedding_dim\": %zu,\n",
               env.context.embeddings().dim());
  std::fprintf(f, "  \"topics\": %zu,\n", env.context.topic_dim());
  // Which featurization kernel the runtime dispatch selected on this host
  // ("avx2" or "scalar") -- the fast-path numbers below depend on it.
  std::fprintf(f, "  \"featurize_kernel\": \"%s\",\n",
               features::KernelName().c_str());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const StageResult& r = results[i];
    size_t units = r.unit[0] == 'c' ? num_columns : num_tables;
    if (r.ref_sec > 0.0) {
      std::fprintf(f,
                   "    {\"stage\": \"%s\", \"unit\": \"%s\", "
                   "\"reference_ns\": %.1f, \"fast_ns\": %.1f, "
                   "\"speedup\": %.2f}%s\n",
                   r.stage, r.unit, PerUnitNs(r.ref_sec, units),
                   PerUnitNs(r.fast_sec, units), r.ref_sec / r.fast_sec,
                   i + 1 < results.size() ? "," : "");
    } else {
      std::fprintf(f,
                   "    {\"stage\": \"%s\", \"unit\": \"%s\", "
                   "\"fast_ns\": %.1f}%s\n",
                   r.stage, r.unit, PerUnitNs(r.fast_sec, units),
                   i + 1 < results.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_features: wrote %s\n", path);
}

int Run() {
  BenchEnv env = BuildEnv(/*seed=*/7);
  const std::vector<Table>& tables = env.tables_d;
  size_t num_columns = 0;
  for (const Table& t : tables) num_columns += t.num_columns();
  int trials = std::max(1, env.scale.trials);

  const embedding::WordEmbeddings& emb = env.context.embeddings();
  const embedding::TfIdf& tfidf = env.context.tfidf();
  const topic::LdaModel& lda = env.context.lda();
  const features::FeaturePipeline& pipeline = env.context.pipeline();

  features::CharFeatureExtractor char_ex;
  features::WordFeatureExtractor word_ex(&emb);
  features::ParagraphFeatureExtractor para_ex(&emb, &tfidf);
  features::StatFeatureExtractor stat_ex;

  std::printf("bench_features: %zu tables (%zu columns), dim=%zu, "
              "topics=%zu, %d trials, kernel=%s\n",
              tables.size(), num_columns, emb.dim(), env.context.topic_dim(),
              trials, features::KernelName().c_str());

  // Prebuilt caches, one per table, so per-group kernels can be timed
  // without re-tokenising (cache construction is its own row below).
  std::vector<embedding::TokenCache> caches(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    caches[i].Build(tables[i], &emb, &tfidf, &lda.vocab());
  }

  features::FeatureScratch scratch;
  std::vector<double> buf;
  util::Timer timer;

  // -- tokenize + cache build (fast path only; the reference tokenises
  // inside each extractor, so its share shows up in the group rows).
  double cache_sec = 0.0;
  {
    embedding::TokenCache cache;
    for (const Table& t : tables) {  // warm
      cache.Build(t, &emb, &tfidf, &lda.vocab());
    }
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        cache.Build(t, &emb, &tfidf, &lda.vocab());
      }
    }
    cache_sec = timer.ElapsedSeconds() / trials;
  }

  // -- per-group kernels.
  auto time_fast = [&](auto&& extract) {
    // warm
    for (size_t i = 0; i < tables.size(); ++i) {
      for (size_t c = 0; c < caches[i].num_columns(); ++c) extract(i, c);
    }
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (size_t i = 0; i < tables.size(); ++i) {
        for (size_t c = 0; c < caches[i].num_columns(); ++c) extract(i, c);
      }
    }
    return timer.ElapsedSeconds() / trials;
  };
  auto time_ref = [&](auto&& extract) {
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        for (const Column& c : t.columns()) extract(c);
      }
    }
    return timer.ElapsedSeconds() / trials;
  };

  std::vector<StageResult> results;
  results.push_back({"tokenize_cache", "table", 0.0, cache_sec});
  results.push_back(
      {"char", "column",
       time_ref([&](const Column& c) { buf = char_ex.ReferenceExtract(c); }),
       time_fast([&](size_t i, size_t c) {
         char_ex.ExtractInto(caches[i], c, &scratch, &buf);
       })});
  results.push_back(
      {"word", "column",
       time_ref([&](const Column& c) { buf = word_ex.ReferenceExtract(c); }),
       time_fast([&](size_t i, size_t c) {
         word_ex.ExtractInto(caches[i], c, &scratch, &buf);
       })});
  results.push_back(
      {"para", "column",
       time_ref([&](const Column& c) { buf = para_ex.ReferenceExtract(c); }),
       time_fast([&](size_t i, size_t c) {
         para_ex.ExtractInto(caches[i], c, &scratch, &buf);
       })});
  results.push_back(
      {"stat", "column",
       time_ref([&](const Column& c) { buf = stat_ex.ReferenceExtract(c); }),
       time_fast([&](size_t i, size_t c) {
         stat_ex.ExtractInto(caches[i], c, &scratch, &buf);
       })});

  // -- extractors end to end: raw table -> four feature groups, including
  // each path's own tokenization (the cache build on the fast side, the
  // per-extractor re-tokenisation on the reference side). This is the
  // headline "featurization speedup vs the reference extractors".
  {
    std::vector<features::ColumnFeatures> fast_features;
    for (const Table& t : tables) {  // warm
      scratch.cache.Build(t, &emb, &tfidf, &lda.vocab());
      pipeline.ExtractCached(&scratch, &fast_features);
    }
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        scratch.cache.Build(t, &emb, &tfidf, &lda.vocab());
        pipeline.ExtractCached(&scratch, &fast_features);
      }
    }
    double fast_sec = timer.ElapsedSeconds() / trials;
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        for (const Column& c : t.columns()) {
          features::ColumnFeatures f = pipeline.ExtractReference(c);
          (void)f;
        }
      }
    }
    double ref_sec = timer.ElapsedSeconds() / trials;
    results.push_back({"extractors_total", "column", ref_sec, fast_sec});
  }

  // -- LDA fold-in per table: raw table -> topic vector, both ways (the
  // reference re-tokenises via TableToDocument; the fast path reads the
  // prebuilt cache's ids).
  {
    util::Rng rng(3);
    std::vector<double> theta;
    for (size_t i = 0; i < tables.size(); ++i) {  // warm
      scratch.lda.ids.clear();
      caches[i].CollectLdaIds(lda.options().max_doc_tokens, &scratch.lda.ids);
      lda.InferTopicsInto(&rng, &scratch.lda, &theta);
    }
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (size_t i = 0; i < tables.size(); ++i) {
        scratch.lda.ids.clear();
        caches[i].CollectLdaIds(lda.options().max_doc_tokens,
                                &scratch.lda.ids);
        lda.InferTopicsInto(&rng, &scratch.lda, &theta);
      }
    }
    double fast_sec = timer.ElapsedSeconds() / trials;
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        theta = lda.ReferenceInferTopics(topic::TableToDocument(t), &rng);
      }
    }
    double ref_sec = timer.ElapsedSeconds() / trials;
    results.push_back({"lda_fold_in", "table", ref_sec, fast_sec});
  }

  // -- end-to-end featurization (four groups + topic vector per table).
  {
    util::Rng rng(5);
    std::vector<features::ColumnFeatures> fast_features;
    std::vector<double> topic;
    for (const Table& t : tables) {  // warm
      env.context.FeaturizeTable(t, &rng, &scratch, &fast_features, &topic);
    }
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        env.context.FeaturizeTable(t, &rng, &scratch, &fast_features, &topic);
      }
    }
    double fast_sec = timer.ElapsedSeconds() / trials;
    timer.Reset();
    for (int r = 0; r < trials; ++r) {
      for (const Table& t : tables) {
        for (const Column& c : t.columns()) {
          features::ColumnFeatures f = pipeline.ExtractReference(c);
          (void)f;
        }
        topic = lda.ReferenceInferTopics(topic::TableToDocument(t), &rng);
      }
    }
    double ref_sec = timer.ElapsedSeconds() / trials;
    results.push_back({"featurize_total", "column", ref_sec, fast_sec});
  }

  std::printf("%16s  %6s  %14s  %14s  %8s\n", "stage", "unit", "reference ns",
              "fast ns", "speedup");
  PrintRule(68);
  for (const StageResult& r : results) {
    size_t units = r.unit[0] == 'c' ? num_columns : tables.size();
    if (r.ref_sec > 0.0) {
      std::printf("%16s  %6s  %14.0f  %14.0f  %7.2fx\n", r.stage, r.unit,
                  PerUnitNs(r.ref_sec, units), PerUnitNs(r.fast_sec, units),
                  r.ref_sec / r.fast_sec);
    } else {
      std::printf("%16s  %6s  %14s  %14.0f  %8s\n", r.stage, r.unit, "-",
                  PerUnitNs(r.fast_sec, units), "-");
    }
  }

  WriteJson("BENCH_features.json", env, tables.size(), num_columns, results);
  return 0;
}

}  // namespace
}  // namespace sato::bench

int main() { return sato::bench::Run(); }
