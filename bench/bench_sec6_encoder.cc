// Regenerates the §6 "Using learned representations" experiment: a
// featurization-free Transformer single-column model (BERT stand-in,
// substitution documented in DESIGN.md) compared against the
// manually-featurised Sherlock Base and the full multi-column Sato.
//
// Expected shape (paper): the learned-representation model reaches a
// support-weighted F1 in the neighbourhood of the Sherlock Base (paper:
// 0.866 vs 0.852) while the multi-column Sato stays clearly ahead --
// showing that table context, not featurisation, is the differentiator.

#include <cstdio>

#include "bench/bench_common.h"
#include "encoder/encoder_trainer.h"
#include "eval/model_eval.h"

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  // Identical fold to the other single-split benches; dataset_dmult rows
  // align 1:1 with tables_dmult (both filtered from D in order).
  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  // --- Transformer encoder on raw column tokens ------------------------
  std::vector<const sato::Column*> train_columns;
  std::vector<int> train_labels;
  for (size_t idx : folds[0].train) {
    const sato::Table& t = env.tables_dmult[idx];
    for (size_t c = 0; c < t.num_columns(); ++c) {
      train_columns.push_back(&t.column(c));
      train_labels.push_back(*t.column(c).type);
    }
  }
  sato::encoder::EncoderConfig config;
  sato::util::Rng rng(1234);
  auto vocab =
      sato::encoder::TokenEncoderModel::BuildVocabulary(train_columns, config);
  sato::encoder::TokenEncoderModel encoder(config, std::move(vocab), &rng);
  sato::encoder::EncoderTrainer trainer(config);
  std::fprintf(stderr, "[sec6] training Transformer encoder on %zu columns...\n",
               train_columns.size());
  double loss = trainer.Train(&encoder, train_columns, train_labels, &rng);
  std::fprintf(stderr, "[sec6] final encoder loss %.3f\n", loss);

  std::vector<int> gold, encoder_pred;
  for (size_t idx : folds[0].test) {
    const sato::Table& t = env.tables_dmult[idx];
    for (size_t c = 0; c < t.num_columns(); ++c) {
      gold.push_back(*t.column(c).type);
      encoder_pred.push_back(sato::encoder::PredictColumn(&encoder, t.column(c)));
    }
  }
  auto encoder_result =
      sato::eval::Evaluate(gold, encoder_pred, sato::kNumSemanticTypes);

  // --- Sherlock Base and full Sato on the same split -------------------
  SatoModel base = TrainVariant(sato::SatoVariant::kBase, env, split.train, 71);
  SatoModel full = TrainVariant(sato::SatoVariant::kFull, env, split.train, 71);
  auto base_result = sato::eval::EvaluateModel(&base, split.test);
  auto full_result = sato::eval::EvaluateModel(&full, split.test);

  std::printf("=== Section 6: featurization-free single-column model ===\n\n");
  std::printf("  %-34s %-12s %-12s\n", "Model", "Weighted F1", "Macro F1");
  PrintRule(60);
  std::printf("  %-34s %-12.3f %-12.3f\n",
              "Transformer encoder (BERT stand-in)",
              encoder_result.weighted_f1, encoder_result.macro_f1);
  std::printf("  %-34s %-12.3f %-12.3f\n", "Sherlock Base (manual features)",
              base_result.weighted_f1, base_result.macro_f1);
  std::printf("  %-34s %-12.3f %-12.3f\n", "Sato (multi-column)",
              full_result.weighted_f1, full_result.macro_f1);
  PrintRule(60);
  std::printf("\nShape check: encoder within reach of Base: %s; "
              "Sato ahead of both single-column models: %s\n",
              encoder_result.weighted_f1 > 0.75 * base_result.weighted_f1
                  ? "yes"
                  : "NO",
              full_result.weighted_f1 > encoder_result.weighted_f1 &&
                      full_result.weighted_f1 > base_result.weighted_f1
                  ? "yes"
                  : "NO");
  return 0;
}
