// Regenerates Figure 8: per-type F1 with vs without *structured*
// prediction.
//   (a) Sato vs Sato_noStruct       (CRF effect on top of topic)
//   (b) Sato_noTopic vs Base        (CRF effect alone)
//
// Expected shape (paper): most types improve; the CRF's long-tail gains are
// smaller than the topic module's (Fig 7) but fewer types regress --
// structured prediction "salvages" overly aggressive predictions.

#include <cstdio>

#include "bench/bench_pertype.h"

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  SatoModel full = TrainVariant(sato::SatoVariant::kFull, env, split.train, 21);
  SatoModel no_struct =
      TrainVariant(sato::SatoVariant::kNoStruct, env, split.train, 21);
  SatoModel no_topic =
      TrainVariant(sato::SatoVariant::kNoTopic, env, split.train, 22);
  SatoModel base = TrainVariant(sato::SatoVariant::kBase, env, split.train, 22);

  std::printf("=== Figure 8: effect of structured prediction (per-type F1) ===\n\n");
  PrintPerTypePanel("(a) Sato vs Sato_noStruct", PerTypeF1(&full, split.test),
                    "Sato", PerTypeF1(&no_struct, split.test), "Sato-NS");
  PrintPerTypePanel("(b) Sato_noTopic vs Base",
                    PerTypeF1(&no_topic, split.test), "Sato-NT",
                    PerTypeF1(&base, split.test), "Base");
  return 0;
}
