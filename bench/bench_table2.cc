// Regenerates Table 2: average training and prediction time of Base vs
// Sato on D_mult over repeated trials, with the training time split into
// the column-wise model ("Features") and the CRF layer ("Structured").
//
// Expected shape (paper): the CRF layer adds noticeable training time; the
// per-table prediction overhead of Sato over Base is well under a
// millisecond, supporting interactive use.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/model_eval.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

struct Timing {
  std::vector<double> features_s;
  std::vector<double> structured_s;
  std::vector<double> predict_s;
};

}  // namespace
}  // namespace sato::bench

int main() {
  using namespace sato::bench;
  using sato::util::Mean;
  BenchEnv env = BuildEnv();

  // One fixed 80/20 split, as the paper times one train/test configuration.
  sato::util::Rng fold_rng(42);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);
  std::printf("=== Table 2: training and prediction time on D_mult ===\n");
  std::printf("(train tables: %zu, test tables: %zu, %d trials, +- 95%% CI)\n\n",
              split.train.tables.size(), split.test.tables.size(),
              env.scale.trials);

  Timing base_t, sato_t;
  for (int trial = 0; trial < env.scale.trials; ++trial) {
    for (bool full : {false, true}) {
      sato::Trainer::TrainStats stats;
      sato::SatoModel model =
          TrainVariant(full ? sato::SatoVariant::kFull : sato::SatoVariant::kBase,
                       env, split.train, 500 + 7 * trial, &stats);
      sato::util::Timer timer;
      std::vector<int> gold, pred;
      sato::eval::PredictDataset(&model, split.test, &gold, &pred);
      double predict_s = timer.ElapsedSeconds();
      Timing& t = full ? sato_t : base_t;
      t.features_s.push_back(stats.columnwise_seconds);
      t.structured_s.push_back(stats.crf_seconds);
      t.predict_s.push_back(predict_s);
      std::fprintf(stderr, "[table2] trial %d %s: features=%.2fs crf=%.2fs predict=%.3fs\n",
                   trial + 1, full ? "Sato" : "Base", stats.columnwise_seconds,
                   stats.crf_seconds, predict_s);
    }
  }

  std::printf("  %-8s %-22s %-22s %-20s\n", "", "Training time [s]", "", "Prediction time [s]");
  std::printf("  %-8s %-22s %-22s %-20s\n", "Model", "Features", "Structured", "");
  PrintRule(76);
  std::printf("  %-8s %-22s %-22s %-20s\n", "Base",
              FormatWithCi(base_t.features_s).c_str(), "N/A",
              FormatWithCi(base_t.predict_s).c_str());
  std::printf("  %-8s %-22s %-22s %-20s\n", "Sato",
              FormatWithCi(sato_t.features_s).c_str(),
              FormatWithCi(sato_t.structured_s).c_str(),
              FormatWithCi(sato_t.predict_s).c_str());
  PrintRule(76);

  double tables = static_cast<double>(split.test.tables.size());
  double base_per_table = Mean(base_t.predict_s) / tables * 1e3;
  double sato_per_table = Mean(sato_t.predict_s) / tables * 1e3;
  std::printf("\nPer-table prediction: Base %.3f ms, Sato %.3f ms "
              "(overhead %.3f ms/table)\n",
              base_per_table, sato_per_table,
              sato_per_table - base_per_table);
  std::printf("Shape check: CRF adds training time: %s; prediction overhead "
              "< 1 ms/table: %s\n",
              Mean(sato_t.structured_s) > 0.0 ? "yes" : "NO",
              (sato_per_table - base_per_table) < 1.0 ? "yes" : "NO");
  return 0;
}
