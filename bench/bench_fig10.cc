// Regenerates Figure 10: 2-D t-SNE projections of column embeddings (the
// activations entering the output layer) for the ambiguous
// organisation-like types {affiliate, teamName, family, manufacturer},
// comparing the topic-aware model (Sato_noStruct -- the paper uses the
// column-wise part of Sato before the CRF) against the Sherlock-style Base.
//
// The paper shows the separation visually; here the claim is made testable
// with silhouette scores over both the raw embeddings and the t-SNE
// projections, plus exported 2-D coordinates.
//
// Expected shape (paper): higher separation (silhouette) for Sato.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "eval/tsne.h"

namespace sato::bench {
namespace {

constexpr const char* kFocusTypes[] = {"affiliate", "teamName", "family",
                                       "manufacturer"};

// Collects embeddings of all test columns whose gold type is in the focus
// set. Returns the matrix plus parallel labels (index into kFocusTypes).
void CollectEmbeddings(sato::SatoModel* model, const Dataset& test,
                       nn::Matrix* points, std::vector<int>* labels) {
  std::map<int, int> focus;
  for (size_t i = 0; i < std::size(kFocusTypes); ++i) {
    focus[TypeIdOrDie(kFocusTypes[i])] = static_cast<int>(i);
  }
  std::vector<std::vector<double>> rows;
  for (const auto& table : test.tables) {
    nn::Matrix emb;
    bool computed = false;
    for (size_t c = 0; c < table.labels.size(); ++c) {
      auto it = focus.find(table.labels[c]);
      if (it == focus.end()) continue;
      if (!computed) {
        emb = model->ColumnEmbeddings(table);
        computed = true;
      }
      rows.push_back(emb.RowVector(c));
      labels->push_back(it->second);
    }
  }
  *points = nn::Matrix::FromRows(rows);
}

}  // namespace
}  // namespace sato::bench

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  // A 50/50 split: the focus types live deep in the long tail, so a 20%
  // test fold would leave too few columns to project.
  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 2, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  SatoModel sato_model =
      TrainVariant(sato::SatoVariant::kNoStruct, env, split.train, 44);
  SatoModel sherlock =
      TrainVariant(sato::SatoVariant::kBase, env, split.train, 44);

  std::printf("=== Figure 10: column-embedding separation for ambiguous "
              "organisation-like types ===\n");
  std::printf("(types: affiliate, teamName, family, manufacturer; embeddings "
              "= final-layer input activations of test columns)\n\n");

  for (bool use_sato : {true, false}) {
    sato::SatoModel* model = use_sato ? &sato_model : &sherlock;
    const char* name = use_sato ? "(a) Sato (topic-aware, pre-CRF)"
                                : "(b) Sherlock (Base)";
    sato::nn::Matrix points;
    std::vector<int> labels;
    CollectEmbeddings(model, split.test, &points, &labels);
    if (points.rows() < 8) {
      std::printf("%s: too few focus columns in the test fold (%zu)\n", name,
                  points.rows());
      continue;
    }
    double raw_silhouette = sato::eval::SilhouetteScore(points, labels);

    sato::util::Rng rng(7);
    sato::eval::TSNE tsne(sato::eval::TSNE::Options{});
    sato::nn::Matrix y = tsne.FitTransform(points, &rng);
    double tsne_silhouette = sato::eval::SilhouetteScore(y, labels);

    std::printf("%s: %zu columns\n", name, points.rows());
    std::printf("  silhouette (raw %zu-d embeddings): %.3f\n", points.cols(),
                raw_silhouette);
    std::printf("  silhouette (t-SNE 2-d projection): %.3f\n", tsne_silhouette);
    std::printf("  first 8 projected points (x, y, type):\n");
    for (size_t i = 0; i < std::min<size_t>(8, y.rows()); ++i) {
      std::printf("    %8.2f %8.2f  %s\n", y(i, 0), y(i, 1),
                  kFocusTypes[labels[i]]);
    }
    std::printf("\n");
  }
  return 0;
}
