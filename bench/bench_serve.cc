// Throughput benchmark for the serving subsystem: offline batch
// prediction over synthetic corpus tables at increasing worker counts
// (tables/s, columns/s, speedup over the single-thread run), plus an
// online mode that drives the PredictionService with closed-loop
// simulated clients and reports request latency percentiles, the achieved
// micro-batch sizes, and the rejected-request count.
//
// The model is architecture-complete but untrained (training changes the
// weights, not the FLOPs), so the numbers isolate the featurise +
// forward + Viterbi serving path the BatchPredictor parallelises. Every
// worker shares the one model through the const Apply() path; the
// benchmark also reports the memory the shared design costs (model +
// per-worker workspaces) against what per-worker replicas would have
// cost, and writes the whole result table to BENCH_serve.json so the
// serving perf trajectory is machine-readable across commits.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/predictor.h"
#include "eval/model_eval.h"
#include "features/config.h"
#include "nn/gemm.h"
#include "serve/batch_predictor.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

/// Command-line knobs (see main): the Zipfian replay shape and whether to
/// skip the offline sweep.
struct BenchFlags {
  double zipf_s = 1.0;       ///< --zipf-s: replay skew (1.0 = classic Zipf)
  size_t replay = 0;         ///< --replay: request count (0 = 8x tables)
  size_t cache_entries = 4096;  ///< --cache-entries: result cache capacity
  bool online_only = false;  ///< --online: skip the offline batch sweep
};

struct ServeResult {
  size_t threads;
  double seconds;
  double tables_per_sec;
  double columns_per_sec;
  size_t workspace_bytes;  // steady-state scratch across all workers
};

/// Wall time of each serving phase over one full batch at a given worker
/// count: featurization (tokenize-once fast path), the column-wise network
/// forward pass, and CRF decoding (Viterbi minus the shared forward).
/// Workers split the tables round-robin with per-worker predictor state,
/// mirroring the BatchPredictor's table-parallel design.
struct PhaseBreakdown {
  size_t threads;
  double featurize_sec;
  double nn_sec;
  double crf_sec;
};

PhaseBreakdown MeasurePhases(const SatoModel& model, const BenchEnv& env,
                             const features::FeatureScaler& scaler,
                             const std::vector<Table>& tables, size_t threads,
                             int trials) {
  struct Worker {
    SatoPredictor predictor;
    SatoPredictor::Scratch scratch;
    nn::Workspace ws;
    std::vector<TableExample> examples;  // this worker's featurised share
    Worker(const SatoModel& m, const BenchEnv& e,
           const features::FeatureScaler& s)
        : predictor(&m, &e.context, s) {}
  };
  std::vector<std::unique_ptr<Worker>> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.push_back(std::make_unique<Worker>(model, env, scaler));
  }

  // Each phase runs for every worker concurrently; the measured time is
  // the wall-clock of the slowest worker (barrier semantics, like one
  // PredictTables pass).
  auto run_parallel = [&](const std::function<void(size_t)>& fn) {
    if (threads == 1) {
      fn(0);
      return;
    }
    std::vector<std::thread> ts;
    ts.reserve(threads);
    for (size_t w = 0; w < threads; ++w) ts.emplace_back(fn, w);
    for (auto& t : ts) t.join();
  };

  // Featurised batch for the network/decoder phases, split round-robin.
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].num_columns() == 0) continue;
    Worker& w = *workers[i % threads];
    util::Rng rng(serve::BatchPredictor::TableSeed(1, i));
    w.examples.push_back(w.predictor.Featurize(tables[i], &rng));
  }

  auto featurize_pass = [&](size_t wi) {
    Worker& w = *workers[wi];
    for (size_t i = wi; i < tables.size(); i += threads) {
      if (tables[i].num_columns() == 0) continue;
      util::Rng rng(serve::BatchPredictor::TableSeed(1, i));
      w.predictor.FeaturizeInto(tables[i], &rng, &w.scratch);
    }
  };
  auto probs_pass = [&](size_t wi) {
    Worker& w = *workers[wi];
    for (const TableExample& e : w.examples) model.PredictProbs(e, &w.ws);
  };
  auto predict_pass = [&](size_t wi) {
    Worker& w = *workers[wi];
    for (const TableExample& e : w.examples) model.Predict(e, &w.ws);
  };

  // Warm-up (scratch/workspace high-water, page faults).
  run_parallel(featurize_pass);
  run_parallel(predict_pass);

  util::Timer timer;
  for (int t = 0; t < trials; ++t) run_parallel(featurize_pass);
  double featurize = timer.ElapsedSeconds() / trials;

  timer.Reset();
  for (int t = 0; t < trials; ++t) run_parallel(probs_pass);
  double nn = timer.ElapsedSeconds() / trials;

  timer.Reset();
  for (int t = 0; t < trials; ++t) run_parallel(predict_pass);
  double predict = timer.ElapsedSeconds() / trials;

  return PhaseBreakdown{threads, featurize, nn, std::max(0.0, predict - nn)};
}

/// One online measurement: closed-loop clients against the
/// PredictionService (each client submits its next table only after its
/// previous response arrived), so offered concurrency == `clients`.
struct OnlineResult {
  size_t clients;
  size_t workers;
  size_t max_batch_size;
  uint64_t max_queue_delay_us;
  size_t requests;
  double seconds;
  double tables_per_sec;
  serve::ServiceStats stats;  // latency percentiles, histogram, rejects
};

OnlineResult MeasureOnline(const SatoModel& model, const BenchEnv& env,
                           const features::FeatureScaler& scaler,
                           const std::vector<Table>& tables, size_t clients,
                           size_t workers, int trials) {
  serve::PredictionServiceOptions options;
  options.num_threads = workers;
  options.max_batch_size = 8;
  options.max_queue_delay_nanos = 200'000;  // 200 us flush deadline
  options.queue_capacity = 1024;
  serve::PredictionService service(model, &env.context, scaler, options);

  auto run_closed_loop = [&] {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = c; i < tables.size(); i += clients) {
          service.Submit(tables[i], serve::BatchPredictor::TableSeed(1, i))
              .Get();
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  run_closed_loop();        // warm-up (first-touch, scratch high-water)
  service.ResetStats();     // keep warm-up samples out of the percentiles

  util::Timer timer;
  for (int t = 0; t < trials; ++t) run_closed_loop();
  double seconds = timer.ElapsedSeconds();

  OnlineResult result;
  result.clients = clients;
  result.workers = workers;
  result.max_batch_size = options.max_batch_size;
  result.max_queue_delay_us = options.max_queue_delay_nanos / 1000;
  result.requests = tables.size() * static_cast<size_t>(trials);
  result.seconds = seconds;
  result.tables_per_sec = static_cast<double>(result.requests) / seconds;
  service.Shutdown();
  result.stats = service.Stats();
  return result;
}

/// Hot-swap measurement: the same closed loop as MeasureOnline, but every
/// `swap_every`-th submission publishes a new registry version (same
/// weights -- swaps isolate the registry/pinning overhead, not model
/// quality). Reports publish latency, how many responses straddled a swap
/// (came back on a different version than was current at submit time),
/// and the latency percentiles under swapping, to compare against the
/// swap-free online run.
struct SwapResult {
  size_t clients;
  size_t workers;
  size_t swap_every;
  size_t requests;
  double seconds;
  double tables_per_sec;
  uint64_t versions_published;
  uint64_t swaps_observed;     // micro-batches that picked up a new version
  uint64_t straddled;          // responses on a version != submit-time one
  double publish_p50_us;
  double publish_max_us;
  serve::ServiceStats stats;
};

SwapResult MeasureSwap(const SatoModel& model, const BenchEnv& env,
                       const features::FeatureScaler& scaler,
                       const std::vector<Table>& tables, size_t clients,
                       size_t workers, size_t swap_every, int trials) {
  serve::ModelRegistry registry;
  registry.PublishBorrowed(model, &env.context, scaler, "bench-v1");

  serve::PredictionServiceOptions options;
  options.num_threads = workers;
  options.max_batch_size = 8;
  options.max_queue_delay_nanos = 200'000;
  options.queue_capacity = 1024;
  serve::PredictionService service(&registry, options);

  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> straddled{0};
  std::mutex publish_mutex;
  std::vector<double> publish_us;

  auto run_closed_loop = [&](bool measure) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = c; i < tables.size(); i += clients) {
          if (++submitted % swap_every == 0) {
            util::Timer publish_timer;
            registry.PublishBorrowed(model, &env.context, scaler);
            if (measure) {
              double us = publish_timer.ElapsedSeconds() * 1e6;
              std::lock_guard<std::mutex> lock(publish_mutex);
              publish_us.push_back(us);
            }
          }
          uint64_t at_submit = registry.current_version();
          serve::PredictionResult r =
              service.Submit(tables[i], serve::BatchPredictor::TableSeed(1, i))
                  .Get();
          if (measure && r.status == serve::RequestStatus::kOk &&
              r.model_version != at_submit) {
            straddled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  run_closed_loop(false);  // warm-up
  service.ResetStats();

  util::Timer timer;
  for (int t = 0; t < trials; ++t) run_closed_loop(true);
  double seconds = timer.ElapsedSeconds();
  service.Shutdown();

  std::sort(publish_us.begin(), publish_us.end());
  SwapResult result;
  result.clients = clients;
  result.workers = workers;
  result.swap_every = swap_every;
  result.requests = tables.size() * static_cast<size_t>(trials);
  result.seconds = seconds;
  result.tables_per_sec = static_cast<double>(result.requests) / seconds;
  result.versions_published = registry.current_version();
  result.stats = service.Stats();
  result.swaps_observed = result.stats.model_swaps;
  result.straddled = straddled.load();
  result.publish_p50_us =
      publish_us.empty() ? 0.0 : publish_us[publish_us.size() / 2];
  result.publish_max_us = publish_us.empty() ? 0.0 : publish_us.back();
  return result;
}

/// Zipfian replay through the content-addressed result cache: the same
/// request trace (skewed table popularity, per-table deterministic seeds)
/// is served twice by closed-loop clients -- once cold (no cache), once
/// with the cache in front -- and every response of the cached run must be
/// byte-identical to its cold twin. Effective speedup is the whole point
/// of the cache, so it is the headline number.
struct CacheReplayResult {
  double zipf_s;
  size_t replay_requests;
  size_t distinct_tables;
  size_t clients;
  size_t workers;
  double cold_seconds;
  double cached_seconds;
  double cold_tables_per_sec;
  double cached_tables_per_sec;
  double speedup;
  bool parity_ok;
  uint64_t hits;
  uint64_t misses;
  serve::ResultCacheStats cache_stats;
};

CacheReplayResult MeasureCacheReplay(const SatoModel& model,
                                     const BenchEnv& env,
                                     const features::FeatureScaler& scaler,
                                     const std::vector<Table>& tables,
                                     double zipf_s, size_t replay_requests,
                                     size_t cache_entries, size_t clients,
                                     size_t workers) {
  // One trace, generated up front, so cold and cached runs serve the
  // exact same sequence. Zipf rank r maps to table r: table 0 is the
  // most popular, matching the skew real table catalogs show.
  util::Rng trace_rng(99);
  std::vector<size_t> trace(replay_requests);
  for (size_t& t : trace) t = trace_rng.Zipf(tables.size(), zipf_s);

  serve::ServiceStats service_stats;
  auto run = [&](serve::ResultCache* cache,
                 std::vector<std::vector<TypeId>>* responses) {
    serve::ModelRegistry registry;
    registry.PublishBorrowed(model, &env.context, scaler, "replay");
    serve::PredictionServiceOptions options;
    options.num_threads = workers;
    options.max_batch_size = 8;
    options.max_queue_delay_nanos = 200'000;
    options.queue_capacity = 1024;
    options.result_cache = cache;
    serve::PredictionService service(&registry, options);

    responses->assign(trace.size(), {});
    util::Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t r = c; r < trace.size(); r += clients) {
          size_t i = trace[r];
          serve::PredictionResult result =
              service.Submit(tables[i], serve::BatchPredictor::TableSeed(1, i))
                  .Get();
          (*responses)[r] = std::move(result.type_ids);  // disjoint slots
        }
      });
    }
    for (auto& t : threads) t.join();
    double seconds = timer.ElapsedSeconds();
    service.Shutdown();
    service_stats = service.Stats();
    return seconds;
  };

  std::vector<std::vector<TypeId>> cold_responses;
  std::vector<std::vector<TypeId>> cached_responses;
  double cold_seconds = run(nullptr, &cold_responses);

  serve::ResultCacheOptions cache_options;
  cache_options.capacity_entries = cache_entries;
  serve::ResultCache cache(cache_options);
  double cached_seconds = run(&cache, &cached_responses);

  CacheReplayResult result;
  result.zipf_s = zipf_s;
  result.replay_requests = replay_requests;
  result.distinct_tables = tables.size();
  result.clients = clients;
  result.workers = workers;
  result.cold_seconds = cold_seconds;
  result.cached_seconds = cached_seconds;
  result.cold_tables_per_sec =
      static_cast<double>(replay_requests) / cold_seconds;
  result.cached_tables_per_sec =
      static_cast<double>(replay_requests) / cached_seconds;
  result.speedup = result.cached_tables_per_sec / result.cold_tables_per_sec;
  result.parity_ok = cold_responses == cached_responses;
  result.hits = service_stats.cache_hits;
  result.misses = service_stats.cache_misses;
  result.cache_stats = cache.Stats();
  return result;
}

/// The same replay through the real network front door: framed requests
/// over loopback TCP against a live Server, so the datapoint includes
/// codec + socket + per-connection thread costs, not just the service.
struct DaemonResult {
  size_t clients;
  size_t requests;
  double seconds;
  double requests_per_sec;
  double mean_request_ms;  // server-side parse -> response-written wall time
  uint64_t cache_hits;
  uint64_t responses_ok;
};

DaemonResult MeasureDaemon(const SatoModel& model, const BenchEnv& env,
                           const features::FeatureScaler& scaler,
                           const std::vector<Table>& tables, double zipf_s,
                           size_t requests, size_t cache_entries,
                           size_t clients, size_t workers) {
  util::Rng trace_rng(99);
  std::vector<size_t> trace(requests);
  for (size_t& t : trace) t = trace_rng.Zipf(tables.size(), zipf_s);

  serve::ModelRegistry registry;
  registry.PublishBorrowed(model, &env.context, scaler, "daemon");
  serve::ResultCacheOptions cache_options;
  cache_options.capacity_entries = cache_entries;
  serve::ResultCache cache(cache_options);
  serve::PredictionServiceOptions options;
  options.num_threads = workers;
  options.max_batch_size = 8;
  options.max_queue_delay_nanos = 200'000;
  options.result_cache = &cache;
  serve::PredictionService service(&registry, options);
  serve::Server server(&service, serve::ServerOptions{});

  std::atomic<uint64_t> ok{0};
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::wire::Client client;
      if (!client.Connect(server.host(), server.port())) return;
      for (size_t r = c; r < trace.size(); r += clients) {
        size_t i = trace[r];
        serve::wire::ClientResponse response = client.Predict(
            tables[i], serve::BatchPredictor::TableSeed(1, i));
        if (response.transport_ok &&
            response.body.status == serve::wire::WireStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds = timer.ElapsedSeconds();
  serve::ServerStats stats = server.Stats();
  server.Shutdown();
  service.Shutdown();

  DaemonResult result;
  result.clients = clients;
  result.requests = requests;
  result.seconds = seconds;
  result.requests_per_sec = static_cast<double>(requests) / seconds;
  result.mean_request_ms =
      stats.requests_measured == 0
          ? 0.0
          : static_cast<double>(stats.request_nanos_total) /
                static_cast<double>(stats.requests_measured) / 1e6;
  result.cache_hits = stats.cache_hits;
  result.responses_ok = ok.load();
  return result;
}

/// Resilience datapoint: the daemon loopback replay run twice with
/// retrying, deadline-bounded clients -- once fault-free, once under a
/// seeded ~1% injected-fault schedule across every fault point -- so the
/// JSON records what faults cost in tail latency and how many requests
/// the retry/shed machinery saved vs surrendered.
struct ResilienceResult {
  size_t clients;
  size_t requests;
  uint64_t fault_ppm;           // per-point injection rate of the faulty run
  uint64_t injected_faults;     // total injections actually fired
  uint64_t retries;             // client retries (faulty run)
  uint64_t deadline_exceeded;   // requests shed by the service (faulty run)
  uint64_t typed_errors;        // non-kOk typed responses (faulty run)
  uint64_t transport_failures;  // retry budget exhausted (faulty run)
  uint64_t responses_ok;        // kOk responses (faulty run)
  double p50_ms_fault_free;
  double p99_ms_fault_free;
  double p50_ms_faulty;
  double p99_ms_faulty;
};

ResilienceResult MeasureResilience(const SatoModel& model, const BenchEnv& env,
                                   const features::FeatureScaler& scaler,
                                   const std::vector<Table>& tables,
                                   size_t requests, size_t clients,
                                   size_t workers) {
  constexpr uint64_t kFaultPpm = 10'000;  // 1% at every fault point

  struct PassResult {
    std::vector<uint64_t> latencies_nanos;  // client-side, per request
    uint64_t ok = 0;
    uint64_t typed_errors = 0;
    uint64_t transport_failures = 0;
    uint64_t retries = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t injected = 0;
  };

  auto run_pass = [&](serve::FaultInjector* injector) {
    serve::ModelRegistry registry;
    registry.PublishBorrowed(model, &env.context, scaler, "resilience");
    serve::ResultCacheOptions cache_options;
    cache_options.capacity_entries = 1024;
    cache_options.fault_injector = injector;
    serve::ResultCache cache(cache_options);
    serve::PredictionServiceOptions options;
    options.num_threads = workers;
    options.max_batch_size = 8;
    options.max_queue_delay_nanos = 200'000;
    options.result_cache = &cache;
    options.fault_injector = injector;
    serve::PredictionService service(&registry, options);
    serve::ServerOptions server_options;
    server_options.fault_injector = injector;
    serve::Server server(&service, server_options);

    PassResult pass;
    std::mutex mutex;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::wire::Client client;
        client.set_fault_injector(injector);
        serve::wire::RetryPolicy policy;
        policy.max_attempts = 3;
        policy.initial_backoff_nanos = 200'000;
        policy.max_backoff_nanos = 5'000'000;
        policy.jitter_fraction = 0.2;
        policy.jitter_seed = 7 + c;
        policy.request_deadline_nanos = 50'000'000;  // 50 ms end to end
        client.set_retry_policy(policy);
        if (!client.Connect(server.host(), server.port())) return;
        std::vector<uint64_t> latencies;
        uint64_t ok = 0, typed = 0, transport = 0;
        for (size_t r = c; r < requests; r += clients) {
          size_t i = r % tables.size();
          util::Timer timer;
          serve::wire::ClientResponse response = client.Predict(
              tables[i], serve::BatchPredictor::TableSeed(2, r));
          latencies.push_back(
              static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
          if (response.transport_ok &&
              response.body.status == serve::wire::WireStatus::kOk) {
            ++ok;
          } else if (response.transport_ok) {
            ++typed;
          } else {
            ++transport;
          }
        }
        std::lock_guard<std::mutex> lock(mutex);
        pass.latencies_nanos.insert(pass.latencies_nanos.end(),
                                    latencies.begin(), latencies.end());
        pass.ok += ok;
        pass.typed_errors += typed;
        pass.transport_failures += transport;
        pass.retries += client.total_retries();
      });
    }
    for (auto& t : threads) t.join();
    server.Shutdown();
    service.Shutdown();
    pass.deadline_exceeded = service.Stats().deadline_exceeded;
    if (injector != nullptr) {
      pass.injected = injector->Stats().total_injected();
    }
    std::sort(pass.latencies_nanos.begin(), pass.latencies_nanos.end());
    return pass;
  };

  auto percentile_ms = [](const std::vector<uint64_t>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
    index = std::min(index, sorted.size() - 1);
    return static_cast<double>(sorted[index]) / 1e6;
  };

  PassResult clean = run_pass(nullptr);
  serve::FaultPlan plan;
  plan.SetAll(kFaultPpm);
  plan.stall_nanos = 1'000'000;  // 1 ms injected stalls
  serve::FaultInjector injector(/*seed=*/2026, plan);
  PassResult faulty = run_pass(&injector);

  ResilienceResult result;
  result.clients = clients;
  result.requests = requests;
  result.fault_ppm = kFaultPpm;
  result.injected_faults = faulty.injected;
  result.retries = faulty.retries;
  result.deadline_exceeded = faulty.deadline_exceeded;
  result.typed_errors = faulty.typed_errors;
  result.transport_failures = faulty.transport_failures;
  result.responses_ok = faulty.ok;
  result.p50_ms_fault_free = percentile_ms(clean.latencies_nanos, 0.50);
  result.p99_ms_fault_free = percentile_ms(clean.latencies_nanos, 0.99);
  result.p50_ms_faulty = percentile_ms(faulty.latencies_nanos, 0.50);
  result.p99_ms_faulty = percentile_ms(faulty.latencies_nanos, 0.99);
  return result;
}

ServeResult MeasureThroughput(const SatoModel& model, const BenchEnv& env,
                              const features::FeatureScaler& scaler,
                              const std::vector<Table>& tables,
                              size_t num_columns, size_t threads,
                              int trials) {
  serve::BatchPredictorOptions options;
  options.num_threads = threads;
  options.seed = 1;
  serve::BatchPredictor batch(model, &env.context, scaler, options);

  batch.PredictTables(tables);  // warm-up pass (first-touch, page faults)

  util::Timer timer;
  for (int t = 0; t < trials; ++t) batch.PredictTables(tables);
  double seconds = timer.ElapsedSeconds() / trials;
  double tables_per_sec = static_cast<double>(tables.size()) / seconds;
  double columns_per_sec = static_cast<double>(num_columns) / seconds;
  return ServeResult{threads, seconds, tables_per_sec, columns_per_sec,
                     batch.WorkspaceBytes()};
}

void WritePhaseEntry(std::FILE* f, const PhaseBreakdown& p, bool last) {
  double total = p.featurize_sec + p.nn_sec + p.crf_sec;
  std::fprintf(f,
               "    {\"threads\": %zu, \"featurize_sec\": %.6f, "
               "\"nn_sec\": %.6f, \"crf_sec\": %.6f, "
               "\"featurize_frac\": %.3f}%s\n",
               p.threads, p.featurize_sec, p.nn_sec, p.crf_sec,
               total > 0.0 ? p.featurize_sec / total : 0.0, last ? "" : ",");
}

void WriteJson(const char* path, const BenchEnv& env,
               const std::vector<ServeResult>& results,
               const std::vector<PhaseBreakdown>& phases,
               const eval::Int8GateResult& gate,
               const PhaseBreakdown* int8_phases, const OnlineResult& online,
               const SwapResult& swap, const CacheReplayResult& replay,
               const DaemonResult& daemon, const ResilienceResult& resilience,
               size_t model_bytes, size_t num_tables, size_t num_columns) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", env.scale.name.c_str());
  std::fprintf(f, "  \"tables\": %zu,\n", num_tables);
  std::fprintf(f, "  \"columns\": %zu,\n", num_columns);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"model_bytes\": %zu,\n", model_bytes);
  std::fprintf(f, "  \"per_call_model_copies\": 0,\n");
  // Which kernels the runtime dispatch selected on this host -- the
  // datapoints below are meaningless without them.
  std::fprintf(f, "  \"featurize_kernel\": \"%s\",\n",
               features::KernelName().c_str());
  std::fprintf(f, "  \"gemm_kernel\": \"%s\",\n",
               nn::gemm::KernelName().c_str());
  std::fprintf(f, "  \"phase_breakdown\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    WritePhaseEntry(f, phases[i], i + 1 == phases.size());
  }
  std::fprintf(f, "  ],\n");
  // Quantized-GEMM accuracy gate: the int8 path may only serve when the
  // macro-F1 degradation vs fp64 on this corpus is within epsilon.
  std::fprintf(f,
               "  \"int8_gate\": {\"fp64_macro_f1\": %.6f, "
               "\"int8_macro_f1\": %.6f, \"delta\": %.6f, "
               "\"epsilon\": %.6f, \"passed\": %s},\n",
               gate.fp64_macro_f1, gate.int8_macro_f1, gate.delta,
               gate.epsilon, gate.passed ? "true" : "false");
  if (int8_phases != nullptr) {
    std::fprintf(f, "  \"phase_breakdown_int8\": [\n");
    WritePhaseEntry(f, *int8_phases, true);
    std::fprintf(f, "  ],\n");
  }
  // Online serving datapoint: latency percentiles (ms), the achieved
  // micro-batch size histogram (index s = batches of size s+1), and the
  // rejected-request count from the closed-loop client run.
  std::fprintf(f,
               "  \"online\": {\"clients\": %zu, \"worker_threads\": %zu, "
               "\"max_batch_size\": %zu, \"max_queue_delay_us\": %llu, "
               "\"requests\": %zu, \"rejected\": %llu, \"batches\": %llu,\n",
               online.clients, online.workers, online.max_batch_size,
               static_cast<unsigned long long>(online.max_queue_delay_us),
               online.requests,
               static_cast<unsigned long long>(online.stats.rejected),
               static_cast<unsigned long long>(online.stats.batches));
  std::fprintf(f,
               "    \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, "
               "\"p99\": %.4f},\n",
               static_cast<double>(online.stats.latency_p50_nanos) / 1e6,
               static_cast<double>(online.stats.latency_p95_nanos) / 1e6,
               static_cast<double>(online.stats.latency_p99_nanos) / 1e6);
  std::fprintf(f, "    \"batch_size_histogram\": [");
  for (size_t s = 1; s < online.stats.batch_size_histogram.size(); ++s) {
    std::fprintf(f, "%s%llu", s == 1 ? "" : ", ",
                 static_cast<unsigned long long>(
                     online.stats.batch_size_histogram[s]));
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"tables_per_sec\": %.2f},\n", online.tables_per_sec);
  // Hot-swap datapoint: registry publish latency, responses that straddled
  // a swap (in flight across a Publish), and the p99 delta against the
  // swap-free online run above -- the cost of zero-downtime rollout.
  std::fprintf(f,
               "  \"swap\": {\"clients\": %zu, \"worker_threads\": %zu, "
               "\"swap_every\": %zu, \"requests\": %zu, "
               "\"versions_published\": %llu, \"swaps_observed\": %llu, "
               "\"straddled_requests\": %llu,\n",
               swap.clients, swap.workers, swap.swap_every, swap.requests,
               static_cast<unsigned long long>(swap.versions_published),
               static_cast<unsigned long long>(swap.swaps_observed),
               static_cast<unsigned long long>(swap.straddled));
  std::fprintf(f,
               "    \"publish_latency_us\": {\"p50\": %.2f, \"max\": %.2f},\n",
               swap.publish_p50_us, swap.publish_max_us);
  std::fprintf(f,
               "    \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, "
               "\"p99\": %.4f},\n",
               static_cast<double>(swap.stats.latency_p50_nanos) / 1e6,
               static_cast<double>(swap.stats.latency_p95_nanos) / 1e6,
               static_cast<double>(swap.stats.latency_p99_nanos) / 1e6);
  std::fprintf(f, "    \"p99_delta_ms_vs_no_swap\": %.4f,\n",
               (static_cast<double>(swap.stats.latency_p99_nanos) -
                static_cast<double>(online.stats.latency_p99_nanos)) /
                   1e6);
  std::fprintf(f, "    \"tables_per_sec\": %.2f},\n", swap.tables_per_sec);
  // Content-addressed result cache under Zipfian replay: the same trace
  // served cold and cached; parity_ok asserts every cached response was
  // byte-identical to its cold twin.
  std::fprintf(f,
               "  \"cache\": {\"zipf_s\": %.2f, \"replay_requests\": %zu, "
               "\"distinct_tables\": %zu, \"clients\": %zu, "
               "\"worker_threads\": %zu, \"capacity_entries\": %zu, "
               "\"shards\": %zu,\n",
               replay.zipf_s, replay.replay_requests, replay.distinct_tables,
               replay.clients, replay.workers,
               replay.cache_stats.capacity_entries, replay.cache_stats.shards);
  std::fprintf(f,
               "    \"hit_rate\": %.4f, \"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"bytes\": %llu,\n",
               replay.cache_stats.hit_rate,
               static_cast<unsigned long long>(replay.hits),
               static_cast<unsigned long long>(replay.misses),
               static_cast<unsigned long long>(replay.cache_stats.evictions),
               static_cast<unsigned long long>(replay.cache_stats.bytes));
  std::fprintf(f,
               "    \"cold_tables_per_sec\": %.2f, "
               "\"cached_tables_per_sec\": %.2f, \"speedup_vs_cold\": %.2f, "
               "\"parity_ok\": %s},\n",
               replay.cold_tables_per_sec, replay.cached_tables_per_sec,
               replay.speedup, replay.parity_ok ? "true" : "false");
  // The same replay through the network daemon (loopback TCP + framing).
  std::fprintf(f,
               "  \"daemon\": {\"clients\": %zu, \"requests\": %zu, "
               "\"responses_ok\": %llu, \"requests_per_sec\": %.2f, "
               "\"mean_request_ms\": %.4f, \"cache_hits\": %llu},\n",
               daemon.clients, daemon.requests,
               static_cast<unsigned long long>(daemon.responses_ok),
               daemon.requests_per_sec, daemon.mean_request_ms,
               static_cast<unsigned long long>(daemon.cache_hits));
  // Daemon under a seeded ~1% injected-fault schedule vs fault-free, with
  // retrying deadline-bounded clients: what faults cost in tail latency
  // and how the shed/retry counters split the losses.
  std::fprintf(f,
               "  \"resilience\": {\"clients\": %zu, \"requests\": %zu, "
               "\"fault_ppm\": %llu, \"injected_faults\": %llu, "
               "\"retries\": %llu, \"deadline_exceeded\": %llu, "
               "\"typed_errors\": %llu, \"transport_failures\": %llu, "
               "\"responses_ok\": %llu,\n",
               resilience.clients, resilience.requests,
               static_cast<unsigned long long>(resilience.fault_ppm),
               static_cast<unsigned long long>(resilience.injected_faults),
               static_cast<unsigned long long>(resilience.retries),
               static_cast<unsigned long long>(resilience.deadline_exceeded),
               static_cast<unsigned long long>(resilience.typed_errors),
               static_cast<unsigned long long>(resilience.transport_failures),
               static_cast<unsigned long long>(resilience.responses_ok));
  std::fprintf(f,
               "    \"latency_ms_fault_free\": {\"p50\": %.4f, "
               "\"p99\": %.4f},\n",
               resilience.p50_ms_fault_free, resilience.p99_ms_fault_free);
  std::fprintf(f,
               "    \"latency_ms_faulty\": {\"p50\": %.4f, "
               "\"p99\": %.4f}},\n",
               resilience.p50_ms_faulty, resilience.p99_ms_faulty);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    // Memory comparison: the shared design holds one model plus scratch
    // workspaces; the old replica design held num_threads full models.
    size_t shared = model_bytes + r.workspace_bytes;
    size_t replica = r.threads * model_bytes;
    std::fprintf(f,
                 "    {\"threads\": %zu, \"sec_per_batch\": %.6f, "
                 "\"tables_per_sec\": %.2f, \"columns_per_sec\": %.2f, "
                 "\"workspace_bytes\": %zu, "
                 "\"shared_model_total_bytes\": %zu, "
                 "\"replica_model_total_bytes\": %zu}%s\n",
                 r.threads, r.seconds, r.tables_per_sec, r.columns_per_sec,
                 r.workspace_bytes, shared, replica,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_serve: wrote %s\n", path);
}

int Run(const BenchFlags& flags) {
  BenchEnv env = BuildEnv(/*seed=*/7);

  // Standardise a copy of D to fit the serving scaler (prediction-time
  // tables must be scaled like the training split).
  Dataset train = env.dataset_d;
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  util::Rng rng(13);
  SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                  env.config, &rng);

  const std::vector<Table>& tables = env.tables_dmult;
  size_t num_columns = 0;
  for (const Table& t : tables) num_columns += t.num_columns();
  size_t model_bytes = model.ParameterBytes();
  std::printf("bench_serve: %zu multi-column tables (%zu columns), "
              "hardware threads = %u, shared model = %.2f MiB\n",
              tables.size(), num_columns,
              std::thread::hardware_concurrency(),
              static_cast<double>(model_bytes) / (1024.0 * 1024.0));

  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  int trials = std::max(1, env.scale.trials);

  std::vector<ServeResult> results;
  std::vector<PhaseBreakdown> phases;
  eval::Int8GateResult gate{};
  PhaseBreakdown int8_phases{};
  bool have_int8_phases = false;
  if (!flags.online_only) {
    std::printf("%8s  %10s  %12s  %13s  %8s  %12s\n", "threads", "sec/batch",
                "tables/sec", "columns/sec", "speedup", "mem vs repl");
    PrintRule(74);
    double base_throughput = 0.0;
    for (size_t threads : thread_counts) {
      ServeResult r = MeasureThroughput(model, env, scaler, tables,
                                        num_columns, threads, trials);
      if (threads == 1) base_throughput = r.tables_per_sec;
      size_t shared = model_bytes + r.workspace_bytes;
      size_t replica = threads * model_bytes;
      std::printf("%8zu  %10.3f  %12.1f  %13.1f  %7.2fx  %5.1f/%.1f MiB\n",
                  r.threads, r.seconds, r.tables_per_sec, r.columns_per_sec,
                  r.tables_per_sec / base_throughput,
                  static_cast<double>(shared) / (1024.0 * 1024.0),
                  static_cast<double>(replica) / (1024.0 * 1024.0));
      results.push_back(r);
    }

    for (size_t threads : thread_counts) {
      phases.push_back(
          MeasurePhases(model, env, scaler, tables, threads, trials));
      const PhaseBreakdown& p = phases.back();
      double phase_total = p.featurize_sec + p.nn_sec + p.crf_sec;
      std::printf("phase breakdown (%zu thread%s): featurize %.3fs (%.0f%%), "
                  "nn %.3fs, crf %.3fs\n",
                  p.threads, p.threads == 1 ? "" : "s", p.featurize_sec,
                  phase_total > 0.0 ? 100.0 * p.featurize_sec / phase_total
                                    : 0.0,
                  p.nn_sec, p.crf_sec);
    }

    // Quantized-inference gate: the int8 GEMM may only serve if its
    // macro-F1 degradation vs fp64 on this corpus is within epsilon. Only a
    // PASS selects the quantized path (for one extra phase datapoint that
    // shows the nn speedup); the comparable main numbers above stay on the
    // process-default fp64 path either way.
    auto bundle = serve::ModelBundle::Borrowed(model, &env.context, scaler);
    gate = eval::RunInt8AccuracyGate(bundle, tables, /*seed=*/1,
                                    /*epsilon=*/0.01);
    std::printf("int8 gate: fp64 macro-F1 %.4f, int8 macro-F1 %.4f, delta "
                "%.4f (epsilon %.3f) -> %s\n",
                gate.fp64_macro_f1, gate.int8_macro_f1, gate.delta,
                gate.epsilon, gate.passed ? "PASS" : "FAIL (serving fp64)");
    if (gate.passed) {
      nn::gemm::Config saved = nn::gemm::DefaultConfig();
      nn::gemm::Config int8_config = saved;
      int8_config.use_int8 = true;
      nn::gemm::SetDefaultConfig(int8_config);
      int8_phases = MeasurePhases(model, env, scaler, tables, 1, trials);
      nn::gemm::SetDefaultConfig(saved);
      have_int8_phases = true;
      std::printf("phase breakdown (1 thread, int8 gemm): featurize %.3fs, "
                  "nn %.3fs (vs %.3fs fp64), crf %.3fs\n",
                  int8_phases.featurize_sec, int8_phases.nn_sec,
                  phases.front().nn_sec, int8_phases.crf_sec);
    }
  }

  // Online mode: the PredictionService under closed-loop load, workers
  // matched to the hardware.
  size_t online_workers =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  OnlineResult online = MeasureOnline(model, env, scaler, tables,
                                      /*clients=*/4, online_workers, trials);
  std::printf("online (%zu clients, %zu workers, batch<=%zu, deadline "
              "%lluus): %.1f tables/sec, p50 %.3fms p95 %.3fms p99 %.3fms, "
              "%llu rejected\n",
              online.clients, online.workers, online.max_batch_size,
              static_cast<unsigned long long>(online.max_queue_delay_us),
              online.tables_per_sec,
              static_cast<double>(online.stats.latency_p50_nanos) / 1e6,
              static_cast<double>(online.stats.latency_p95_nanos) / 1e6,
              static_cast<double>(online.stats.latency_p99_nanos) / 1e6,
              static_cast<unsigned long long>(online.stats.rejected));
  std::printf("online batch sizes:");
  for (size_t s = 1; s < online.stats.batch_size_histogram.size(); ++s) {
    if (online.stats.batch_size_histogram[s] == 0) continue;
    std::printf(" %zux%llu", s,
                static_cast<unsigned long long>(
                    online.stats.batch_size_histogram[s]));
  }
  std::printf("  (%llu batches)\n",
              static_cast<unsigned long long>(online.stats.batches));

  // Hot-swap mode: same closed loop, publishing a new version roughly
  // eight times per pass over the corpus.
  size_t swap_every = std::max<size_t>(1, tables.size() / 8);
  SwapResult swap = MeasureSwap(model, env, scaler, tables, /*clients=*/4,
                                online_workers, swap_every, trials);
  std::printf("swap (every %zu submits): %llu versions published, %llu swaps "
              "observed, %llu straddling responses, publish p50 %.1fus max "
              "%.1fus, p99 %.3fms (vs %.3fms without swaps)\n",
              swap.swap_every,
              static_cast<unsigned long long>(swap.versions_published),
              static_cast<unsigned long long>(swap.swaps_observed),
              static_cast<unsigned long long>(swap.straddled),
              swap.publish_p50_us, swap.publish_max_us,
              static_cast<double>(swap.stats.latency_p99_nanos) / 1e6,
              static_cast<double>(online.stats.latency_p99_nanos) / 1e6);

  // Zipfian replay through the result cache: cold vs cached on the exact
  // same request trace, parity-checked response by response.
  size_t replay_requests =
      flags.replay ? flags.replay : tables.size() * 8;
  CacheReplayResult replay = MeasureCacheReplay(
      model, env, scaler, tables, flags.zipf_s, replay_requests,
      flags.cache_entries, /*clients=*/4, online_workers);
  std::printf("cache replay (zipf s=%.2f, %zu requests over %zu tables, "
              "%zu entries): hit rate %.3f (%llu/%llu), cold %.1f "
              "tables/sec, cached %.1f tables/sec -> %.2fx, parity %s\n",
              replay.zipf_s, replay.replay_requests, replay.distinct_tables,
              flags.cache_entries, replay.cache_stats.hit_rate,
              static_cast<unsigned long long>(replay.hits),
              static_cast<unsigned long long>(replay.hits + replay.misses),
              replay.cold_tables_per_sec, replay.cached_tables_per_sec,
              replay.speedup, replay.parity_ok ? "OK" : "MISMATCH");

  // And the same trace through the daemon's network front door.
  size_t daemon_requests =
      std::min(replay_requests, tables.size() * 2);
  DaemonResult daemon = MeasureDaemon(model, env, scaler, tables,
                                      flags.zipf_s, daemon_requests,
                                      flags.cache_entries, /*clients=*/2,
                                      online_workers);
  std::printf("daemon (loopback, %zu clients, %zu framed requests): %.1f "
              "requests/sec, mean server-side %.3fms, %llu ok, %llu cache "
              "hits\n",
              daemon.clients, daemon.requests, daemon.requests_per_sec,
              daemon.mean_request_ms,
              static_cast<unsigned long long>(daemon.responses_ok),
              static_cast<unsigned long long>(daemon.cache_hits));

  // Resilience: the same loopback daemon under a seeded injected-fault
  // schedule vs fault-free, retrying clients with 50 ms deadlines.
  ResilienceResult resilience =
      MeasureResilience(model, env, scaler, tables, daemon_requests,
                        /*clients=*/2, online_workers);
  std::printf("resilience (%llu ppm faults, %zu requests): fault-free p50 "
              "%.3fms p99 %.3fms -> faulty p50 %.3fms p99 %.3fms; %llu "
              "injected, %llu retries, %llu shed, %llu ok / %llu typed / "
              "%llu transport-failed\n",
              static_cast<unsigned long long>(resilience.fault_ppm),
              resilience.requests, resilience.p50_ms_fault_free,
              resilience.p99_ms_fault_free, resilience.p50_ms_faulty,
              resilience.p99_ms_faulty,
              static_cast<unsigned long long>(resilience.injected_faults),
              static_cast<unsigned long long>(resilience.retries),
              static_cast<unsigned long long>(resilience.deadline_exceeded),
              static_cast<unsigned long long>(resilience.responses_ok),
              static_cast<unsigned long long>(resilience.typed_errors),
              static_cast<unsigned long long>(resilience.transport_failures));

  WriteJson("BENCH_serve.json", env, results, phases, gate,
            have_int8_phases ? &int8_phases : nullptr, online, swap, replay,
            daemon, resilience, model_bytes, tables.size(), num_columns);
  if (!replay.parity_ok) {
    std::fprintf(stderr,
                 "bench_serve: FATAL: cached responses diverged from cold\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sato::bench

int main(int argc, char** argv) {
  sato::bench::BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--online") {
      flags.online_only = true;
    } else if (arg == "--zipf-s") {
      flags.zipf_s = std::atof(value());
    } else if (arg == "--replay") {
      flags.replay = static_cast<size_t>(std::atoll(value()));
    } else if (arg == "--cache-entries") {
      flags.cache_entries = static_cast<size_t>(std::atoll(value()));
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--online] [--zipf-s S] [--replay N] "
                   "[--cache-entries N]\n");
      return 2;
    }
  }
  return sato::bench::Run(flags);
}
