// Throughput benchmark for the serving subsystem: batch prediction over
// synthetic corpus tables at increasing worker counts, reported as
// tables/s and columns/s with the speedup over the single-thread run.
//
// The model is architecture-complete but untrained (training changes the
// weights, not the FLOPs), so the numbers isolate the featurise +
// forward + Viterbi serving path the BatchPredictor parallelises. Every
// worker shares the one model through the const Apply() path; the
// benchmark also reports the memory the shared design costs (model +
// per-worker workspaces) against what per-worker replicas would have
// cost, and writes the whole result table to BENCH_serve.json so the
// serving perf trajectory is machine-readable across commits.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/predictor.h"
#include "serve/batch_predictor.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

struct ServeResult {
  size_t threads;
  double seconds;
  double tables_per_sec;
  double columns_per_sec;
  size_t workspace_bytes;  // steady-state scratch across all workers
};

/// Single-thread wall time of each serving phase over one full batch:
/// featurization (tokenize-once fast path), the column-wise network
/// forward pass, and CRF decoding (Viterbi minus the shared forward).
struct PhaseBreakdown {
  double featurize_sec;
  double nn_sec;
  double crf_sec;
};

PhaseBreakdown MeasurePhases(const SatoModel& model, const BenchEnv& env,
                             const features::FeatureScaler& scaler,
                             const std::vector<Table>& tables, int trials) {
  SatoPredictor predictor(&model, &env.context, scaler);
  SatoPredictor::Scratch scratch;
  nn::Workspace ws;

  // Featurised batch for the network/decoder phases.
  std::vector<TableExample> examples;
  examples.reserve(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].num_columns() == 0) continue;
    util::Rng rng(serve::BatchPredictor::TableSeed(1, i));
    examples.push_back(predictor.Featurize(tables[i], &rng));
  }

  // Warm-up (scratch/workspace high-water, page faults).
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].num_columns() == 0) continue;
    util::Rng rng(serve::BatchPredictor::TableSeed(1, i));
    predictor.FeaturizeInto(tables[i], &rng, &scratch);
  }
  for (const TableExample& e : examples) model.Predict(e, &ws);

  util::Timer timer;
  for (int t = 0; t < trials; ++t) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].num_columns() == 0) continue;
      util::Rng rng(serve::BatchPredictor::TableSeed(1, i));
      predictor.FeaturizeInto(tables[i], &rng, &scratch);
    }
  }
  double featurize = timer.ElapsedSeconds() / trials;

  timer.Reset();
  for (int t = 0; t < trials; ++t) {
    for (const TableExample& e : examples) model.PredictProbs(e, &ws);
  }
  double nn = timer.ElapsedSeconds() / trials;

  timer.Reset();
  for (int t = 0; t < trials; ++t) {
    for (const TableExample& e : examples) model.Predict(e, &ws);
  }
  double predict = timer.ElapsedSeconds() / trials;

  return PhaseBreakdown{featurize, nn, std::max(0.0, predict - nn)};
}

ServeResult MeasureThroughput(const SatoModel& model, const BenchEnv& env,
                              const features::FeatureScaler& scaler,
                              const std::vector<Table>& tables,
                              size_t num_columns, size_t threads,
                              int trials) {
  serve::BatchPredictorOptions options;
  options.num_threads = threads;
  options.seed = 1;
  serve::BatchPredictor batch(model, &env.context, scaler, options);

  batch.PredictTables(tables);  // warm-up pass (first-touch, page faults)

  util::Timer timer;
  for (int t = 0; t < trials; ++t) batch.PredictTables(tables);
  double seconds = timer.ElapsedSeconds() / trials;
  double tables_per_sec = static_cast<double>(tables.size()) / seconds;
  double columns_per_sec = static_cast<double>(num_columns) / seconds;
  return ServeResult{threads, seconds, tables_per_sec, columns_per_sec,
                     batch.WorkspaceBytes()};
}

void WriteJson(const char* path, const BenchEnv& env,
               const std::vector<ServeResult>& results,
               const PhaseBreakdown& phases, size_t model_bytes,
               size_t num_tables, size_t num_columns) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", env.scale.name.c_str());
  std::fprintf(f, "  \"tables\": %zu,\n", num_tables);
  std::fprintf(f, "  \"columns\": %zu,\n", num_columns);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"model_bytes\": %zu,\n", model_bytes);
  std::fprintf(f, "  \"per_call_model_copies\": 0,\n");
  double total = phases.featurize_sec + phases.nn_sec + phases.crf_sec;
  std::fprintf(f,
               "  \"phase_breakdown\": {\"threads\": 1, "
               "\"featurize_sec\": %.6f, \"nn_sec\": %.6f, "
               "\"crf_sec\": %.6f, \"featurize_frac\": %.3f},\n",
               phases.featurize_sec, phases.nn_sec, phases.crf_sec,
               total > 0.0 ? phases.featurize_sec / total : 0.0);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    // Memory comparison: the shared design holds one model plus scratch
    // workspaces; the old replica design held num_threads full models.
    size_t shared = model_bytes + r.workspace_bytes;
    size_t replica = r.threads * model_bytes;
    std::fprintf(f,
                 "    {\"threads\": %zu, \"sec_per_batch\": %.6f, "
                 "\"tables_per_sec\": %.2f, \"columns_per_sec\": %.2f, "
                 "\"workspace_bytes\": %zu, "
                 "\"shared_model_total_bytes\": %zu, "
                 "\"replica_model_total_bytes\": %zu}%s\n",
                 r.threads, r.seconds, r.tables_per_sec, r.columns_per_sec,
                 r.workspace_bytes, shared, replica,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_serve: wrote %s\n", path);
}

int Run() {
  BenchEnv env = BuildEnv(/*seed=*/7);

  // Standardise a copy of D to fit the serving scaler (prediction-time
  // tables must be scaled like the training split).
  Dataset train = env.dataset_d;
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  util::Rng rng(13);
  SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                  env.config, &rng);

  const std::vector<Table>& tables = env.tables_dmult;
  size_t num_columns = 0;
  for (const Table& t : tables) num_columns += t.num_columns();
  size_t model_bytes = model.ParameterBytes();
  std::printf("bench_serve: %zu multi-column tables (%zu columns), "
              "hardware threads = %u, shared model = %.2f MiB\n",
              tables.size(), num_columns,
              std::thread::hardware_concurrency(),
              static_cast<double>(model_bytes) / (1024.0 * 1024.0));

  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  int trials = std::max(1, env.scale.trials);

  std::printf("%8s  %10s  %12s  %13s  %8s  %12s\n", "threads", "sec/batch",
              "tables/sec", "columns/sec", "speedup", "mem vs repl");
  PrintRule(74);
  double base_throughput = 0.0;
  std::vector<ServeResult> results;
  for (size_t threads : thread_counts) {
    ServeResult r = MeasureThroughput(model, env, scaler, tables, num_columns,
                                      threads, trials);
    if (threads == 1) base_throughput = r.tables_per_sec;
    size_t shared = model_bytes + r.workspace_bytes;
    size_t replica = threads * model_bytes;
    std::printf("%8zu  %10.3f  %12.1f  %13.1f  %7.2fx  %5.1f/%.1f MiB\n",
                r.threads, r.seconds, r.tables_per_sec, r.columns_per_sec,
                r.tables_per_sec / base_throughput,
                static_cast<double>(shared) / (1024.0 * 1024.0),
                static_cast<double>(replica) / (1024.0 * 1024.0));
    results.push_back(r);
  }

  PhaseBreakdown phases = MeasurePhases(model, env, scaler, tables, trials);
  double phase_total = phases.featurize_sec + phases.nn_sec + phases.crf_sec;
  std::printf("phase breakdown (1 thread): featurize %.3fs (%.0f%%), "
              "nn %.3fs, crf %.3fs\n",
              phases.featurize_sec,
              phase_total > 0.0 ? 100.0 * phases.featurize_sec / phase_total
                                : 0.0,
              phases.nn_sec, phases.crf_sec);

  WriteJson("BENCH_serve.json", env, results, phases, model_bytes,
            tables.size(), num_columns);
  return 0;
}

}  // namespace
}  // namespace sato::bench

int main() { return sato::bench::Run(); }
