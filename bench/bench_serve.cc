// Throughput benchmark for the serving subsystem: batch prediction over
// synthetic corpus tables at increasing worker counts, reported as
// tables/s and columns/s with the speedup over the single-thread run.
//
// The model is architecture-complete but untrained (training changes the
// weights, not the FLOPs), so the numbers isolate the featurise +
// forward + Viterbi serving path the BatchPredictor parallelises.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/predictor.h"
#include "serve/batch_predictor.h"
#include "util/timer.h"

namespace sato::bench {
namespace {

struct ServeResult {
  size_t threads;
  double seconds;
  double tables_per_sec;
  double columns_per_sec;
};

ServeResult MeasureThroughput(const SatoModel& model, const BenchEnv& env,
                              const features::FeatureScaler& scaler,
                              const std::vector<Table>& tables,
                              size_t num_columns, size_t threads,
                              int trials) {
  serve::BatchPredictorOptions options;
  options.num_threads = threads;
  options.seed = 1;
  serve::BatchPredictor batch(model, &env.context, scaler, options);

  batch.PredictTables(tables);  // warm-up pass (first-touch, page faults)

  util::Timer timer;
  for (int t = 0; t < trials; ++t) batch.PredictTables(tables);
  double seconds = timer.ElapsedSeconds() / trials;
  double tables_per_sec = static_cast<double>(tables.size()) / seconds;
  double columns_per_sec = static_cast<double>(num_columns) / seconds;
  return ServeResult{threads, seconds, tables_per_sec, columns_per_sec};
}

int Run() {
  BenchEnv env = BuildEnv(/*seed=*/7);

  // Standardise a copy of D to fit the serving scaler (prediction-time
  // tables must be scaled like the training split).
  Dataset train = env.dataset_d;
  features::FeatureScaler scaler = StandardizeSplits(&train, nullptr);

  util::Rng rng(13);
  SatoModel model(SatoVariant::kFull, env.dims, env.context.topic_dim(),
                  env.config, &rng);

  const std::vector<Table>& tables = env.tables_dmult;
  size_t num_columns = 0;
  for (const Table& t : tables) num_columns += t.num_columns();
  std::printf("bench_serve: %zu multi-column tables (%zu columns), "
              "hardware threads = %u\n",
              tables.size(), num_columns,
              std::thread::hardware_concurrency());

  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  int trials = std::max(1, env.scale.trials);

  std::printf("%8s  %10s  %12s  %13s  %8s\n", "threads", "sec/batch",
              "tables/sec", "columns/sec", "speedup");
  PrintRule(60);
  double base_throughput = 0.0;
  for (size_t threads : thread_counts) {
    ServeResult r = MeasureThroughput(model, env, scaler, tables, num_columns,
                                      threads, trials);
    if (threads == 1) base_throughput = r.tables_per_sec;
    std::printf("%8zu  %10.3f  %12.1f  %13.1f  %7.2fx\n", r.threads,
                r.seconds, r.tables_per_sec, r.columns_per_sec,
                r.tables_per_sec / base_throughput);
  }
  return 0;
}

}  // namespace
}  // namespace sato::bench

int main() { return sato::bench::Run(); }
