// Regenerates Figure 9: permutation feature importance for the feature
// categories (topic / word / char / par / rest) under each of the four
// models, measured as the normalised drop in macro-average and
// support-weighted F1 when the group is shuffled across the test set.
//
// Expected shape (paper): Word and Char dominate for Base and Sato_noTopic;
// once the Topic group is present (Sato_noStruct, Sato) it has comparable
// or greater importance -- most visibly under the macro-average metric.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/permutation_importance.h"

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  using sato::features::FeatureGroup;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  std::printf("=== Figure 9: permutation importance of feature groups ===\n");
  std::printf("(importance = %% drop in F1 when the group is shuffled; %d "
              "trials)\n\n",
              env.scale.trials);

  const sato::SatoVariant kVariants[] = {
      sato::SatoVariant::kBase, sato::SatoVariant::kNoTopic,
      sato::SatoVariant::kNoStruct, sato::SatoVariant::kFull};

  for (sato::SatoVariant variant : kVariants) {
    SatoModel model = TrainVariant(variant, env, split.train, 33);
    std::vector<FeatureGroup> groups = {FeatureGroup::kWord, FeatureGroup::kChar,
                                        FeatureGroup::kPara, FeatureGroup::kStat};
    if (model.uses_topic()) groups.insert(groups.begin(), FeatureGroup::kTopic);

    sato::util::Rng rng(55);
    sato::eval::PermutationImportance importance(&model, split.test);
    auto results = importance.Compute(groups, env.scale.trials, &rng);

    std::printf("%s\n", VariantName(variant).c_str());
    std::printf("  %-8s %-16s %-16s\n", "group", "macro avg", "weighted avg");
    PrintRule(44);
    for (const auto& r : results) {
      std::printf("  %-8s %15.1f%% %15.1f%%\n",
                  sato::features::FeatureGroupName(r.group).c_str(),
                  r.macro_importance, r.weighted_importance);
    }
    PrintRule(44);
    std::printf("\n");
  }
  return 0;
}
