// Micro-benchmarks (google-benchmark) for the hot paths behind the
// experiment harness: feature extraction, LDA inference, CRF inference and
// decoding, and the column-wise network forward pass. These quantify the
// per-table prediction cost that Table 2 reports end-to-end.

#include <benchmark/benchmark.h>

#include "core/columnwise_model.h"
#include "core/config.h"
#include "corpus/generator.h"
#include "crf/linear_chain_crf.h"
#include "embedding/sgns.h"
#include "embedding/tfidf.h"
#include "features/pipeline.h"
#include "nn/loss.h"
#include "topic/lda.h"
#include "topic/table_document.h"

namespace {

using namespace sato;

// Shared fixtures, built once.
struct MicroEnv {
  std::vector<Table> tables;
  embedding::WordEmbeddings embeddings;
  embedding::TfIdf tfidf;
  topic::LdaModel lda;
  features::FeaturePipeline pipeline;

  static const MicroEnv& Get() {
    static MicroEnv* env = [] {
      corpus::CorpusOptions copts;
      copts.num_tables = 200;
      copts.singleton_prob = 0.0;
      corpus::CorpusGenerator gen(copts);
      auto tables = gen.Generate();

      util::Rng rng(1);
      std::vector<std::vector<std::string>> sentences;
      for (const auto& t : tables) {
        for (const auto& c : t.columns()) {
          std::vector<std::string> s;
          for (const auto& v : c.values) {
            auto toks = embedding::TokenizeCell(v);
            s.insert(s.end(), toks.begin(), toks.end());
          }
          if (!s.empty()) sentences.push_back(std::move(s));
        }
      }
      embedding::SgnsTrainer::Options sgns_opts;
      embedding::SgnsTrainer trainer(sgns_opts);
      auto embeddings = trainer.Train(sentences, &rng);

      auto docs = topic::TablesToDocuments(tables);
      embedding::TfIdf tfidf;
      tfidf.Fit(docs);
      topic::LdaOptions lda_opts;
      lda_opts.num_topics = 32;
      lda_opts.train_iterations = 40;
      auto lda = topic::LdaModel::Train(docs, lda_opts, &rng);

      return new MicroEnv{std::move(tables), std::move(embeddings),
                          std::move(tfidf), std::move(lda),
                          features::FeaturePipeline(nullptr, nullptr)};
    }();
    return *env;
  }

  MicroEnv(std::vector<Table> t, embedding::WordEmbeddings e,
           embedding::TfIdf f, topic::LdaModel l,
           features::FeaturePipeline /*unused*/)
      : tables(std::move(t)), embeddings(std::move(e)), tfidf(std::move(f)),
        lda(std::move(l)), pipeline(&embeddings, &tfidf) {}
};

void BM_FeatureExtractionPerColumn(benchmark::State& state) {
  const MicroEnv& env = MicroEnv::Get();
  size_t i = 0;
  for (auto _ : state) {
    const Table& t = env.tables[i % env.tables.size()];
    const Column& c = t.column(i % t.num_columns());
    benchmark::DoNotOptimize(env.pipeline.Extract(c));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtractionPerColumn);

void BM_LdaInferencePerTable(benchmark::State& state) {
  const MicroEnv& env = MicroEnv::Get();
  util::Rng rng(2);
  size_t i = 0;
  for (auto _ : state) {
    const Table& t = env.tables[i % env.tables.size()];
    benchmark::DoNotOptimize(
        env.lda.InferTopics(topic::TableToDocument(t), &rng));
    ++i;
  }
}
BENCHMARK(BM_LdaInferencePerTable);

void BM_CrfViterbi(benchmark::State& state) {
  int columns = static_cast<int>(state.range(0));
  util::Rng rng(3);
  crf::LinearChainCrf crf(kNumSemanticTypes);
  crf.pairwise().value =
      nn::Matrix::Gaussian(kNumSemanticTypes, kNumSemanticTypes, 0.3, &rng);
  nn::Matrix unary = nn::Matrix::Gaussian(
      static_cast<size_t>(columns), kNumSemanticTypes, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Viterbi(unary));
  }
}
BENCHMARK(BM_CrfViterbi)->Arg(2)->Arg(5)->Arg(10);

void BM_CrfLogPartition(benchmark::State& state) {
  int columns = static_cast<int>(state.range(0));
  util::Rng rng(4);
  crf::LinearChainCrf crf(kNumSemanticTypes);
  nn::Matrix unary = nn::Matrix::Gaussian(
      static_cast<size_t>(columns), kNumSemanticTypes, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.LogPartition(unary));
  }
}
BENCHMARK(BM_CrfLogPartition)->Arg(2)->Arg(10);

void BM_ColumnwiseForward(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  util::Rng rng(5);
  SatoConfig config;
  ColumnwiseModel::Dims dims;
  dims.char_dim = 212;
  dims.word_dim = 50;
  dims.para_dim = 25;
  dims.stat_dim = 27;
  dims.topic_dim = 32;
  ColumnwiseModel model(dims, config, &rng);

  FeatureBatch fb;
  fb.char_features = nn::Matrix::Gaussian(batch, dims.char_dim, 1.0, &rng);
  fb.word_features = nn::Matrix::Gaussian(batch, dims.word_dim, 1.0, &rng);
  fb.para_features = nn::Matrix::Gaussian(batch, dims.para_dim, 1.0, &rng);
  fb.stat_features = nn::Matrix::Gaussian(batch, dims.stat_dim, 1.0, &rng);
  fb.topic_features = nn::Matrix::Gaussian(batch, dims.topic_dim, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(fb, false));
  }
}
BENCHMARK(BM_ColumnwiseForward)->Arg(1)->Arg(16)->Arg(64);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng(6);
  nn::Matrix logits = nn::Matrix::Gaussian(64, kNumSemanticTypes, 1.0, &rng);
  std::vector<int> targets(64);
  for (auto& t : targets) t = static_cast<int>(rng.UniformInt(0, 77));
  nn::SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.Forward(logits, targets));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

}  // namespace

BENCHMARK_MAIN();
