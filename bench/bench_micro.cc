// Micro-benchmarks (google-benchmark) for the hot paths behind the
// experiment harness: feature extraction, LDA inference, CRF inference and
// decoding, the column-wise network forward pass, and the GEMM kernel that
// all dense layers funnel through. These quantify the per-table prediction
// cost that Table 2 reports end-to-end.
//
// After the google-benchmark pass, main() runs a fixed naive-vs-blocked
// GEMM comparison over the matrix shapes the model actually multiplies and
// writes it to BENCH_gemm.json (schema in docs/BENCHMARKS.md), the kernel
// counterpart of bench_serve's BENCH_serve.json. Scale via
// SATO_BENCH_SCALE; run only the GEMM suite with
// --benchmark_filter=BM_Gemm (the CI Release smoke does exactly that).
// The JSON pass is skipped for --benchmark_list_tests and for filters
// that exclude the BM_Gemm* suite.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "core/columnwise_model.h"
#include "core/config.h"
#include "corpus/generator.h"
#include "crf/linear_chain_crf.h"
#include "embedding/sgns.h"
#include "embedding/tfidf.h"
#include "features/pipeline.h"
#include "nn/gemm.h"
#include "nn/loss.h"
#include "serve/gemm_parallel_for.h"
#include "serve/thread_pool.h"
#include "topic/lda.h"
#include "topic/table_document.h"
#include "util/timer.h"

namespace {

using namespace sato;

// Shared fixtures, built once.
struct MicroEnv {
  std::vector<Table> tables;
  embedding::WordEmbeddings embeddings;
  embedding::TfIdf tfidf;
  topic::LdaModel lda;
  features::FeaturePipeline pipeline;

  static const MicroEnv& Get() {
    static MicroEnv* env = [] {
      corpus::CorpusOptions copts;
      copts.num_tables = 200;
      copts.singleton_prob = 0.0;
      corpus::CorpusGenerator gen(copts);
      auto tables = gen.Generate();

      util::Rng rng(1);
      std::vector<std::vector<std::string>> sentences;
      for (const auto& t : tables) {
        for (const auto& c : t.columns()) {
          std::vector<std::string> s;
          for (const auto& v : c.values) {
            auto toks = embedding::TokenizeCell(v);
            s.insert(s.end(), toks.begin(), toks.end());
          }
          if (!s.empty()) sentences.push_back(std::move(s));
        }
      }
      embedding::SgnsTrainer::Options sgns_opts;
      embedding::SgnsTrainer trainer(sgns_opts);
      auto embeddings = trainer.Train(sentences, &rng);

      auto docs = topic::TablesToDocuments(tables);
      embedding::TfIdf tfidf;
      tfidf.Fit(docs);
      topic::LdaOptions lda_opts;
      lda_opts.num_topics = 32;
      lda_opts.train_iterations = 40;
      auto lda = topic::LdaModel::Train(docs, lda_opts, &rng);

      return new MicroEnv{std::move(tables), std::move(embeddings),
                          std::move(tfidf), std::move(lda),
                          features::FeaturePipeline(nullptr, nullptr)};
    }();
    return *env;
  }

  MicroEnv(std::vector<Table> t, embedding::WordEmbeddings e,
           embedding::TfIdf f, topic::LdaModel l,
           features::FeaturePipeline /*unused*/)
      : tables(std::move(t)), embeddings(std::move(e)), tfidf(std::move(f)),
        lda(std::move(l)), pipeline(&embeddings, &tfidf) {}
};

void BM_FeatureExtractionPerColumn(benchmark::State& state) {
  const MicroEnv& env = MicroEnv::Get();
  size_t i = 0;
  for (auto _ : state) {
    const Table& t = env.tables[i % env.tables.size()];
    const Column& c = t.column(i % t.num_columns());
    benchmark::DoNotOptimize(env.pipeline.Extract(c));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtractionPerColumn);

void BM_LdaInferencePerTable(benchmark::State& state) {
  const MicroEnv& env = MicroEnv::Get();
  util::Rng rng(2);
  size_t i = 0;
  for (auto _ : state) {
    const Table& t = env.tables[i % env.tables.size()];
    benchmark::DoNotOptimize(
        env.lda.InferTopics(topic::TableToDocument(t), &rng));
    ++i;
  }
}
BENCHMARK(BM_LdaInferencePerTable);

void BM_CrfViterbi(benchmark::State& state) {
  int columns = static_cast<int>(state.range(0));
  util::Rng rng(3);
  crf::LinearChainCrf crf(kNumSemanticTypes);
  crf.pairwise().value =
      nn::Matrix::Gaussian(kNumSemanticTypes, kNumSemanticTypes, 0.3, &rng);
  nn::Matrix unary = nn::Matrix::Gaussian(
      static_cast<size_t>(columns), kNumSemanticTypes, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Viterbi(unary));
  }
}
BENCHMARK(BM_CrfViterbi)->Arg(2)->Arg(5)->Arg(10);

void BM_CrfLogPartition(benchmark::State& state) {
  int columns = static_cast<int>(state.range(0));
  util::Rng rng(4);
  crf::LinearChainCrf crf(kNumSemanticTypes);
  nn::Matrix unary = nn::Matrix::Gaussian(
      static_cast<size_t>(columns), kNumSemanticTypes, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.LogPartition(unary));
  }
}
BENCHMARK(BM_CrfLogPartition)->Arg(2)->Arg(10);

void BM_ColumnwiseForward(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  util::Rng rng(5);
  SatoConfig config;
  ColumnwiseModel::Dims dims;
  dims.char_dim = 212;
  dims.word_dim = 50;
  dims.para_dim = 25;
  dims.stat_dim = 27;
  dims.topic_dim = 32;
  ColumnwiseModel model(dims, config, &rng);

  FeatureBatch fb;
  fb.char_features = nn::Matrix::Gaussian(batch, dims.char_dim, 1.0, &rng);
  fb.word_features = nn::Matrix::Gaussian(batch, dims.word_dim, 1.0, &rng);
  fb.para_features = nn::Matrix::Gaussian(batch, dims.para_dim, 1.0, &rng);
  fb.stat_features = nn::Matrix::Gaussian(batch, dims.stat_dim, 1.0, &rng);
  fb.topic_features = nn::Matrix::Gaussian(batch, dims.topic_dim, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(fb, false));
  }
}
BENCHMARK(BM_ColumnwiseForward)->Arg(1)->Arg(16)->Arg(64);

// -- GEMM kernel suite ------------------------------------------------------
// One shape table drives both the google-benchmark suite and the
// BENCH_gemm.json writer, so the two measurements can never drift apart.
// Shapes are the multiplies SatoModel::Predict actually issues (batch of
// 64 columns, default SatoConfig widths, encoder at max_tokens+1 = 25)
// plus the 256^3 acceptance shape whose speedup the JSON tracks.
struct GemmShape {
  const char* role;  ///< `role` field of the BENCH_gemm.json entry
  int64_t m, k, n;   ///< C = A[m x k] * B[k x n]
};

constexpr GemmShape kGemmShapes[] = {
    {"acceptance_256cubed", 256, 256, 256},
    {"char_subnet_in", 64, 212, 48},   // [batch x char_dim] x hidden
    {"primary_in", 64, 123, 96},       // [batch x concat]   x hidden
    {"attention_proj", 25, 32, 32},    // [seq x d_model]    x d_model
    {"output_logits", 64, 96, 78},     // [batch x hidden]   x types
};

void GemmShapeArgs(benchmark::internal::Benchmark* b) {
  for (const GemmShape& s : kGemmShapes) b->Args({s.m, s.k, s.n});
}

nn::Matrix GemmArg(size_t rows, size_t cols, uint64_t seed) {
  util::Rng rng(seed);
  return nn::Matrix::Gaussian(rows, cols, 1.0, &rng);
}

void BM_GemmBlocked(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t n = static_cast<size_t>(state.range(2));
  nn::Matrix a = GemmArg(m, k, 7), b = GemmArg(k, n, 8), c;
  for (auto _ : state) {
    nn::gemm::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * k * n) * 1e-9 *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->Apply(GemmShapeArgs);

void BM_GemmInt8(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t n = static_cast<size_t>(state.range(2));
  nn::Matrix a = GemmArg(m, k, 7), b = GemmArg(k, n, 8), c;
  nn::gemm::Config config = nn::gemm::DefaultConfig();
  config.use_int8 = true;
  for (auto _ : state) {
    nn::gemm::Gemm(a, b, &c, config);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * k * n) * 1e-9 *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmInt8)->Apply(GemmShapeArgs);

void BM_GemmReference(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t n = static_cast<size_t>(state.range(2));
  nn::Matrix a = GemmArg(m, k, 7), b = GemmArg(k, n, 8), c;
  for (auto _ : state) {
    nn::gemm::ReferenceGemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * k * n) * 1e-9 *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmReference)->Apply(GemmShapeArgs);

void BM_GemmBlockedTransposeB(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t n = static_cast<size_t>(state.range(2));
  nn::Matrix a = GemmArg(m, k, 7), b = GemmArg(n, k, 8), c;
  for (auto _ : state) {
    nn::gemm::GemmTransposeB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBlockedTransposeB)->Args({256, 256, 256});

void BM_GemmBlockedTransposeA(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  size_t n = static_cast<size_t>(state.range(2));
  nn::Matrix a = GemmArg(k, m, 7), b = GemmArg(k, n, 8), c;
  for (auto _ : state) {
    nn::gemm::GemmTransposeA(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBlockedTransposeA)->Args({256, 256, 256});

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng(6);
  nn::Matrix logits = nn::Matrix::Gaussian(64, kNumSemanticTypes, 1.0, &rng);
  std::vector<int> targets(64);
  for (auto& t : targets) t = static_cast<int>(rng.UniformInt(0, 77));
  nn::SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.Forward(logits, targets));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

// -- BENCH_gemm.json --------------------------------------------------------
// Machine-readable naive-vs-blocked comparison, the perf-trajectory file
// the CI Release job uploads next to BENCH_serve.json. Iteration counts
// target a fixed FLOP budget per measurement so every shape gets a stable
// timing at every scale.

double TimeGemmSeconds(const nn::Matrix& a, const nn::Matrix& b,
                       nn::Matrix* c, const nn::gemm::Config& config,
                       bool reference, int iters) {
  if (reference) {
    nn::gemm::ReferenceGemm(a, b, c);  // warm-up (page faults, buffers)
  } else {
    nn::gemm::Gemm(a, b, c, config);
  }
  util::Timer timer;
  for (int i = 0; i < iters; ++i) {
    if (reference) {
      nn::gemm::ReferenceGemm(a, b, c);
    } else {
      nn::gemm::Gemm(a, b, c, config);
    }
  }
  return timer.ElapsedSeconds() / iters;
}

/// The serving-shaped int8 measurement: B (the weights) packed once
/// outside the loop, as Linear::Apply does, so only the per-call A-side
/// quantization and the integer kernel are on the clock.
double TimePrepackedInt8Seconds(const nn::Matrix& a, const nn::Matrix& b,
                                nn::Matrix* c,
                                const nn::gemm::Config& config, int iters) {
  nn::gemm::PackedInt8B packed = nn::gemm::PackInt8B(b);
  nn::gemm::GemmPrepackedInt8(a, packed, c, config);  // warm-up
  util::Timer timer;
  for (int i = 0; i < iters; ++i) {
    nn::gemm::GemmPrepackedInt8(a, packed, c, config);
  }
  return timer.ElapsedSeconds() / iters;
}

void WriteGemmJson(const char* path) {
  const bench::BenchScale scale = bench::GetScale();
  // FLOPs spent per (shape, kernel) measurement; keeps tiny CI smokes fast
  // and committed small/medium datapoints stable.
  double flop_budget = 2e7;
  if (scale.name == "small") flop_budget = 3e8;
  if (scale.name == "medium") flop_budget = 1e9;
  if (scale.name == "large") flop_budget = 3e9;

  size_t threads = std::max(1u, std::thread::hardware_concurrency());
  serve::ThreadPool pool(threads);
  nn::gemm::Config parallel = nn::gemm::DefaultConfig();
  parallel.parallel_for = serve::GemmParallelFor(&pool);
  parallel.parallel_chunks = pool.num_threads();
  parallel.parallel_min_columns = nn::gemm::kMicroCols;

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return;
  }
  const nn::gemm::Config& cfg = nn::gemm::DefaultConfig();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"gemm\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", scale.name.c_str());
  nn::gemm::Config int8 = cfg;
  int8.use_int8 = true;
  std::fprintf(f, "  \"kernel\": \"%s\",\n", nn::gemm::KernelName().c_str());
  std::fprintf(f, "  \"int8_kernel\": \"%s\",\n",
               nn::gemm::KernelName(int8).c_str());
  std::fprintf(f, "  \"micro_tile\": {\"mr\": %zu, \"nr\": %zu},\n",
               nn::gemm::kMicroRows, nn::gemm::kMicroCols);
  std::fprintf(f, "  \"blocks\": {\"mc\": %zu, \"kc\": %zu, \"nc\": %zu},\n",
               cfg.mc, cfg.kc, cfg.nc);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"results\": [\n");

  size_t count = sizeof(kGemmShapes) / sizeof(kGemmShapes[0]);
  for (size_t s = 0; s < count; ++s) {
    const GemmShape& shape = kGemmShapes[s];
    size_t m = static_cast<size_t>(shape.m);
    size_t k = static_cast<size_t>(shape.k);
    size_t n = static_cast<size_t>(shape.n);
    double flops = 2.0 * static_cast<double>(m * k * n);
    int iters = static_cast<int>(
        std::min(10000.0, std::max(1.0, flop_budget / flops)));
    nn::Matrix a = GemmArg(m, k, 7);
    nn::Matrix b = GemmArg(k, n, 8);
    nn::Matrix c;
    double naive = TimeGemmSeconds(a, b, &c, cfg, /*reference=*/true, iters);
    double blocked =
        TimeGemmSeconds(a, b, &c, cfg, /*reference=*/false, iters);
    double par =
        TimeGemmSeconds(a, b, &c, parallel, /*reference=*/false, iters);
    double int8_sec =
        TimeGemmSeconds(a, b, &c, int8, /*reference=*/false, iters);
    double int8_pre_sec = TimePrepackedInt8Seconds(a, b, &c, int8, iters);
    std::fprintf(
        f,
        "    {\"role\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
        "\"iters\": %d,\n"
        "     \"naive_sec\": %.6g, \"blocked_sec\": %.6g, "
        "\"speedup\": %.2f,\n"
        "     \"naive_gflops\": %.2f, \"blocked_gflops\": %.2f,\n"
        "     \"int8_sec\": %.6g, \"int8_speedup_vs_blocked\": %.2f,\n"
        "     \"int8_prepacked_sec\": %.6g, "
        "\"int8_prepacked_speedup_vs_blocked\": %.2f,\n"
        "     \"parallel_threads\": %zu, \"parallel_sec\": %.6g, "
        "\"parallel_speedup\": %.2f}%s\n",
        shape.role, m, k, n, iters, naive, blocked, naive / blocked,
        flops * 1e-9 / naive, flops * 1e-9 / blocked, int8_sec,
        blocked / int8_sec, int8_pre_sec, blocked / int8_pre_sec, threads,
        par, naive / par, s + 1 < count ? "," : "");
    std::fprintf(stderr,
                 "bench_micro gemm: %-20s %4zux%4zux%4zu  naive %8.3f ms  "
                 "blocked %8.3f ms  speedup %.2fx  int8 %8.3f ms (%.2fx vs "
                 "blocked)  int8-prepacked %8.3f ms (%.2fx)\n",
                 shape.role, m, k, n, naive * 1e3, blocked * 1e3,
                 naive / blocked, int8_sec * 1e3, blocked / int8_sec,
                 int8_pre_sec * 1e3, blocked / int8_pre_sec);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_micro: wrote %s\n", path);
}

// The BENCH_gemm.json pass runs only when this invocation plausibly asked
// for GEMM numbers: a list-only run does no work at all, and a filter that
// excludes the BM_Gemm* suite skips the sweep (and never clobbers an
// existing datapoint file).
bool ShouldWriteGemmJson(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--benchmark_list_tests", 0) == 0) return false;
    const std::string filter_flag = "--benchmark_filter=";
    if (arg.rfind(filter_flag, 0) == 0) {
      std::string value = arg.substr(filter_flag.size());
      // A leading '-' is google-benchmark's negative filter: it EXCLUDES
      // matches, so mentioning Gemm there means the suite is skipped.
      bool negative = !value.empty() && value[0] == '-';
      bool mentions_gemm = value.find("Gemm") != std::string::npos;
      if (negative ? mentions_gemm : !mentions_gemm) return false;
    }
  }
  return true;
}

}  // namespace

// Custom main (instead of BENCHMARK_MAIN): run the google-benchmark suite,
// then emit the BENCH_gemm.json perf datapoint.
int main(int argc, char** argv) {
  bool write_gemm_json = ShouldWriteGemmJson(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (write_gemm_json) WriteGemmJson("BENCH_gemm.json");
  return 0;
}
