#ifndef SATO_BENCH_BENCH_PERTYPE_H_
#define SATO_BENCH_BENCH_PERTYPE_H_

// Shared logic for the per-type F1 ablation figures (Fig 7 and Fig 8):
// train the four variants on one split and print sorted per-type F1
// comparisons in the paper's "with (blue) vs without (orange)" layout.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/model_eval.h"

namespace sato::bench {

/// Per-type F1 for a model on a test set (only types with support).
inline std::vector<eval::TypeMetrics> PerTypeF1(SatoModel* model,
                                                const Dataset& test) {
  return eval::EvaluateModel(model, test).per_type;
}

/// Prints the per-type comparison panel: types sorted by the "with" F1
/// (descending, the paper's layout), followed by improved/equal/worse
/// counts. `with_f1` plays the role of the blue series.
inline void PrintPerTypePanel(const char* title,
                              const std::vector<eval::TypeMetrics>& with_f1,
                              const char* with_name,
                              const std::vector<eval::TypeMetrics>& without_f1,
                              const char* without_name) {
  std::vector<int> types;
  for (int t = 0; t < kNumSemanticTypes; ++t) {
    if (with_f1[static_cast<size_t>(t)].support > 0) types.push_back(t);
  }
  std::sort(types.begin(), types.end(), [&](int a, int b) {
    return with_f1[static_cast<size_t>(a)].f1 > with_f1[static_cast<size_t>(b)].f1;
  });

  std::printf("%s\n", title);
  std::printf("  %-16s %10s %10s %8s\n", "type", with_name, without_name,
              "delta");
  PrintRule(50);
  int improved = 0, equal = 0, worse = 0;
  for (int t : types) {
    double w = with_f1[static_cast<size_t>(t)].f1;
    double wo = without_f1[static_cast<size_t>(t)].f1;
    if (w > wo + 1e-9) ++improved;
    else if (w < wo - 1e-9) ++worse;
    else ++equal;
    std::printf("  %-16s %10.3f %10.3f %+8.3f\n", TypeName(t).c_str(), w, wo,
                w - wo);
  }
  PrintRule(50);
  std::printf("  types improved: %d, unchanged: %d, worse: %d (of %zu with "
              "support)\n\n",
              improved, equal, worse, types.size());
}

}  // namespace sato::bench

#endif  // SATO_BENCH_BENCH_PERTYPE_H_
