// Regenerates Table 4: concrete test tables whose column-wise
// mispredictions are corrected by the structured-prediction (CRF) step.
//   (a) tables corrected going from Base to Sato_noTopic (Base + CRF);
//   (b) tables corrected going from Sato_noStruct to full Sato.
//
// Expected shape (paper): the CRF exploits co-occurrence (e.g. a column
// misread as `name` next to `isbn`/`symbol` becomes `company`; duplicated
// location-ish guesses get resolved into code/name/city-style sequences).

#include <cstdio>

#include "bench/bench_common.h"

namespace sato::bench {
namespace {

std::string TypesToString(const std::vector<int>& types) {
  std::string out;
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += ", ";
    out += sato::TypeName(types[i]);
  }
  return out;
}

// Prints up to `limit` test tables where `before` was wrong on >=1 column
// and `after` fixed every wrong column.
void PrintCorrected(const char* title, sato::SatoModel* before,
                    sato::SatoModel* after, const sato::Dataset& test,
                    size_t limit) {
  std::printf("%s\n", title);
  std::printf("  %-8s %-34s %-34s %s\n", "Table", "True columns",
              "w/o structured prediction", "w/ structured prediction");
  PrintRule(130);
  size_t shown = 0, corrected_total = 0, regressed_total = 0;
  for (const auto& table : test.tables) {
    if (table.labels.size() < 2) continue;
    auto pred_before = before->Predict(table);
    auto pred_after = after->Predict(table);
    bool before_wrong = pred_before != table.labels;
    bool after_right = pred_after == table.labels;
    if (before_wrong && after_right) {
      ++corrected_total;
      if (shown < limit) {
        std::printf("  %-8s %-34s %-34s %s\n", table.id.c_str(),
                    TypesToString(table.labels).c_str(),
                    TypesToString(pred_before).c_str(),
                    TypesToString(pred_after).c_str());
        ++shown;
      }
    } else if (!before_wrong && pred_after != table.labels) {
      ++regressed_total;
    }
  }
  PrintRule(130);
  std::printf("  fully corrected tables: %zu, regressed tables: %zu\n\n",
              corrected_total, regressed_total);
}

}  // namespace
}  // namespace sato::bench

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  // Train all four variants on the same split. Sato_noTopic shares Base's
  // column-wise scores; Sato shares Sato_noStruct's -- training them with
  // the same seeds keeps the (a)/(b) comparisons aligned with the paper's.
  SatoModel base = TrainVariant(sato::SatoVariant::kBase, env, split.train, 11);
  SatoModel no_topic =
      TrainVariant(sato::SatoVariant::kNoTopic, env, split.train, 11);
  SatoModel no_struct =
      TrainVariant(sato::SatoVariant::kNoStruct, env, split.train, 12);
  SatoModel full = TrainVariant(sato::SatoVariant::kFull, env, split.train, 12);

  std::printf("=== Table 4: mispredictions corrected by structured prediction ===\n\n");
  PrintCorrected("(a) Corrected tables from Base predictions (Base -> Sato_noTopic)",
                 &base, &no_topic, split.test, 5);
  PrintCorrected(
      "(b) Corrected tables from Sato_noStruct predictions (Sato_noStruct -> Sato)",
      &no_struct, &full, split.test, 5);
  return 0;
}
