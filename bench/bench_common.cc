#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/math_util.h"
#include "util/timer.h"

namespace sato::bench {

BenchScale GetScale() {
  const char* env = std::getenv("SATO_BENCH_SCALE");
  std::string name = env != nullptr ? env : "small";
  if (name == "large") {
    return BenchScale{"large", 8000, 3000, 128, 50, 15, 5, 5};
  }
  if (name == "medium") {
    return BenchScale{"medium", 3000, 1200, 64, 35, 15, 5, 5};
  }
  if (name == "tiny") {  // CI smoke runs: shape coverage, minimal cost
    return BenchScale{"tiny", 200, 120, 8, 2, 2, 2, 1};
  }
  return BenchScale{"small", 1200, 500, 32, 25, 10, 5, 3};
}

BenchEnv BuildEnv(uint64_t seed) {
  util::Timer timer;
  BenchScale scale = GetScale();
  std::fprintf(stderr, "[bench] scale=%s: %zu tables, %d topics, %d epochs\n",
               scale.name.c_str(), scale.corpus_tables, scale.num_topics,
               scale.epochs);

  SatoConfig config;
  config.num_topics = scale.num_topics;
  config.epochs = scale.epochs;
  config.crf_epochs = scale.crf_epochs;
  config.seed = seed;

  corpus::CorpusOptions copts;
  copts.num_tables = scale.corpus_tables;
  copts.seed = seed;
  corpus::CorpusGenerator gen(copts);

  std::vector<Table> tables_d = gen.Generate();
  std::vector<Table> tables_dmult = corpus::FilterMultiColumn(tables_d);
  std::vector<Table> reference =
      gen.GenerateWith(scale.reference_tables, seed + 1000003);
  std::fprintf(stderr, "[bench %.1fs] corpus: |D|=%zu |Dmult|=%zu\n",
               timer.ElapsedSeconds(), tables_d.size(), tables_dmult.size());

  util::Rng rng(seed + 17);
  FeatureContext context = FeatureContext::Build(reference, config, &rng);
  std::fprintf(stderr, "[bench %.1fs] context: vocab=%zu topics=%zu\n",
               timer.ElapsedSeconds(), context.embeddings().vocab_size(),
               context.topic_dim());

  DatasetBuilder builder(&context);
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  Dataset dataset_d = builder.Build(tables_d, &rng, std::max(1, threads));
  Dataset dataset_dmult;
  for (const auto& t : dataset_d.tables) {
    if (t.labels.size() > 1) dataset_dmult.tables.push_back(t);
  }
  std::fprintf(stderr, "[bench %.1fs] features: %zu columns featurised\n",
               timer.ElapsedSeconds(), dataset_d.NumColumns());

  ColumnwiseModel::Dims dims;
  dims.char_dim = context.pipeline().char_dim();
  dims.word_dim = context.pipeline().word_dim();
  dims.para_dim = context.pipeline().para_dim();
  dims.stat_dim = context.pipeline().stat_dim();

  return BenchEnv{scale,
                  config,
                  std::move(tables_d),
                  std::move(tables_dmult),
                  std::move(context),
                  std::move(dataset_d),
                  std::move(dataset_dmult),
                  dims};
}

Dataset Subset(const Dataset& data, const std::vector<size_t>& indices) {
  Dataset out;
  out.tables.reserve(indices.size());
  for (size_t i : indices) out.tables.push_back(data.tables[i]);
  return out;
}

Split MakeSplit(const Dataset& data, const eval::FoldIndices& fold) {
  Split split;
  split.train = Subset(data, fold.train);
  split.test = Subset(data, fold.test);
  StandardizeSplits(&split.train, &split.test);
  return split;
}

SatoModel TrainVariant(SatoVariant variant, const BenchEnv& env,
                       const Dataset& train, uint64_t seed,
                       Trainer::TrainStats* stats) {
  util::Rng rng(seed);
  SatoModel model(variant, env.dims, env.context.topic_dim(), env.config,
                  &rng);
  Trainer trainer(env.config);
  Trainer::TrainStats s = trainer.Train(&model, train, &rng);
  if (stats != nullptr) *stats = s;
  return model;
}

std::string FormatWithCi(const std::vector<double>& values) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f +-%.3f", util::Mean(values),
                util::ConfidenceInterval95(values));
  return buf;
}

std::string FormatImprovement(double value, double baseline) {
  if (baseline <= 0.0) return "(n/a)";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "(%+.1f%%)",
                100.0 * (value - baseline) / baseline);
  return buf;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sato::bench
