// Regenerates Figure 6: same-table co-occurrence frequencies (log scale)
// for the selected set of semantic types the paper plots, printed as a
// heat-map-style matrix of log1p(count) values.
//
// Expected shape (paper): strong pairs like (city, state), (age, weight),
// (age, name), (code, description); a non-zero diagonal (tables can repeat
// a type); most cells near zero.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "crf/crf_trainer.h"

int main() {
  using namespace sato::bench;
  BenchScale scale = GetScale();
  sato::corpus::CorpusOptions copts;
  copts.num_tables = scale.corpus_tables;
  copts.seed = 7;
  sato::corpus::CorpusGenerator gen(copts);
  auto tables = sato::corpus::FilterMultiColumn(gen.Generate());

  std::vector<std::vector<int>> sequences;
  sequences.reserve(tables.size());
  for (const auto& t : tables) sequences.push_back(t.TypeSequence());
  sato::nn::Matrix counts =
      sato::crf::TableCooccurrence(sequences, sato::kNumSemanticTypes);

  // The row/column ordering of the paper's Fig 6.
  const char* kSelected[] = {
      "address", "language", "component", "elevation", "company",
      "collection", "gender", "day", "description", "type", "rank", "year",
      "location", "status", "city", "state", "county", "country", "class",
      "position", "code", "weight", "category", "team", "notes", "result",
      "age", "name"};
  constexpr int kN = static_cast<int>(std::size(kSelected));

  std::printf("=== Figure 6: log-scale co-occurrence counts (selected types) ===\n\n");
  std::printf("%12s", "");
  for (int j = 0; j < kN; ++j) std::printf("%5.4s", kSelected[j]);
  std::printf("\n");
  for (int i = 0; i < kN; ++i) {
    std::printf("%12s", kSelected[i]);
    size_t a = static_cast<size_t>(sato::TypeIdOrDie(kSelected[i]));
    for (int j = 0; j < kN; ++j) {
      size_t b = static_cast<size_t>(sato::TypeIdOrDie(kSelected[j]));
      double v = std::log1p(counts(a, b));
      if (v == 0.0) {
        std::printf("%5s", ".");
      } else {
        std::printf("%5.1f", v);
      }
    }
    std::printf("\n");
  }

  // Headline pairs.
  auto log_count = [&](const char* x, const char* y) {
    return std::log1p(counts(static_cast<size_t>(sato::TypeIdOrDie(x)),
                             static_cast<size_t>(sato::TypeIdOrDie(y))));
  };
  std::printf("\nHeadline pairs (log1p counts):\n");
  std::printf("  (city, state)        %.2f\n", log_count("city", "state"));
  std::printf("  (age, weight)        %.2f\n", log_count("age", "weight"));
  std::printf("  (age, name)          %.2f\n", log_count("age", "name"));
  std::printf("  (code, description)  %.2f\n", log_count("code", "description"));
  std::printf("  (city, jockey)       %.2f  <- unrelated pair, near zero\n",
              log_count("city", "jockey"));
  double diag = 0.0;
  for (int t = 0; t < sato::kNumSemanticTypes; ++t) {
    diag += counts(static_cast<size_t>(t), static_cast<size_t>(t));
  }
  std::printf("Shape check: non-zero diagonal total (repeated types): %.0f (%s)\n",
              diag, diag > 0 ? "yes" : "NO");
  return 0;
}
