// Regenerates Table 3: the top-5 salient LDA topics with their
// representative semantic types (top-5 types by average topic probability)
// and the topic's top words as interpretation hints.
//
// Expected shape (paper): salient topics align with coherent themes --
// e.g. one topic gathers person-related types (origin, nationality,
// country, sex), another business-related types (code, company, symbol).

#include <cstdio>

#include "bench/bench_common.h"
#include "topic/analysis.h"

int main() {
  using namespace sato::bench;
  BenchEnv env = BuildEnv();

  sato::util::Rng rng(321);
  sato::topic::TopicAnalysis analysis(&env.context.lda());
  // Fit on the evaluation corpus D, as §5.5 averages theta over the tables
  // containing each type.
  analysis.Fit(env.tables_d, &rng);
  auto salient = analysis.SalientTopics(5, 5);

  std::printf("=== Table 3: top-5 salient topics and representative types ===\n\n");
  std::printf("  %-7s %-10s %-52s %s\n", "Topic", "Saliency",
              "Top-5 semantic types", "Top words (interpretation hints)");
  PrintRule(110);
  for (const auto& st : salient) {
    std::string types;
    for (size_t i = 0; i < st.top_types.size(); ++i) {
      if (i > 0) types += ", ";
      types += sato::TypeName(st.top_types[i].first);
    }
    std::string words;
    for (size_t i = 0; i < st.top_words.size(); ++i) {
      if (i > 0) words += ", ";
      words += st.top_words[i];
    }
    std::printf("  #%-6d %-10.4f %-52s %s\n", st.topic, st.saliency,
                types.c_str(), words.c_str());
  }
  PrintRule(110);
  std::printf("\n(The paper's example: topic #192 -> origin, nationality, "
              "country, continent, sex; topic #264 -> code, description, "
              "creator, company, symbol.)\n");
  return 0;
}
