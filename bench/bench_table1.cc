// Regenerates Table 1: macro-average and support-weighted F1 of Base,
// Sato, Sato_noStruct and Sato_noTopic on D_mult (multi-column tables) and
// D (all tables), under k-fold cross-validation with 95% CIs and relative
// improvements over Base.
//
// Expected shape (paper): Sato > Sato_noStruct, Sato_noTopic > Base on both
// metrics; macro-F1 gains exceed weighted-F1 gains; gains on D_mult exceed
// gains on D (singleton tables carry no context and dilute the effect).

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "eval/model_eval.h"
#include "util/math_util.h"

namespace sato::bench {
namespace {

constexpr SatoVariant kVariants[] = {SatoVariant::kBase, SatoVariant::kFull,
                                     SatoVariant::kNoStruct,
                                     SatoVariant::kNoTopic};

struct VariantScores {
  std::vector<double> macro;
  std::vector<double> weighted;
};

std::map<SatoVariant, VariantScores> RunCv(const BenchEnv& env,
                                           const Dataset& dataset,
                                           const char* label) {
  util::Rng fold_rng(191);
  auto folds = eval::KFold(dataset.tables.size(), env.scale.folds, &fold_rng);
  std::map<SatoVariant, VariantScores> scores;
  for (size_t f = 0; f < folds.size(); ++f) {
    Split split = MakeSplit(dataset, folds[f]);
    for (SatoVariant variant : kVariants) {
      SatoModel model =
          TrainVariant(variant, env, split.train, 1000 + 31 * f);
      eval::EvaluationResult r = eval::EvaluateModel(&model, split.test);
      scores[variant].macro.push_back(r.macro_f1);
      scores[variant].weighted.push_back(r.weighted_f1);
      std::fprintf(stderr, "[table1:%s] fold %zu/%zu %-14s macro=%.3f weighted=%.3f\n",
                   label, f + 1, folds.size(), VariantName(variant).c_str(),
                   r.macro_f1, r.weighted_f1);
    }
  }
  return scores;
}

void PrintBlock(const char* title,
                const std::map<SatoVariant, VariantScores>& scores) {
  const auto& base = scores.at(SatoVariant::kBase);
  double base_macro = util::Mean(base.macro);
  double base_weighted = util::Mean(base.weighted);
  std::printf("%s\n", title);
  std::printf("  %-14s %-24s %-24s\n", "Model", "Macro average F1",
              "Support-weighted F1");
  PrintRule(66);
  for (SatoVariant v : kVariants) {
    const auto& s = scores.at(v);
    std::printf("  %-14s %-14s %-9s %-14s %-9s\n", VariantName(v).c_str(),
                FormatWithCi(s.macro).c_str(),
                v == SatoVariant::kBase
                    ? ""
                    : FormatImprovement(util::Mean(s.macro), base_macro).c_str(),
                FormatWithCi(s.weighted).c_str(),
                v == SatoVariant::kBase
                    ? ""
                    : FormatImprovement(util::Mean(s.weighted), base_weighted)
                          .c_str());
  }
  PrintRule(66);
}

}  // namespace
}  // namespace sato::bench

int main() {
  using namespace sato::bench;
  BenchEnv env = BuildEnv();

  std::printf("=== Table 1: performance comparison across datasets ===\n");
  std::printf("(%zu-fold cross-validation, +- denotes 95%% CI, (%%) relative "
              "improvement over Base)\n\n",
              env.scale.folds);

  auto dmult_scores = RunCv(env, env.dataset_dmult, "Dmult");
  PrintBlock("Multi-column tables D_mult", dmult_scores);
  std::printf("\n");
  auto d_scores = RunCv(env, env.dataset_d, "D");
  PrintBlock("All tables D", d_scores);

  // Shape assertions, reported rather than enforced.
  double sato_mult = sato::util::Mean(dmult_scores.at(sato::SatoVariant::kFull).macro);
  double base_mult = sato::util::Mean(dmult_scores.at(sato::SatoVariant::kBase).macro);
  double sato_d = sato::util::Mean(d_scores.at(sato::SatoVariant::kFull).macro);
  double base_d = sato::util::Mean(d_scores.at(sato::SatoVariant::kBase).macro);
  std::printf("\nShape check: Sato beats Base on D_mult: %s; "
              "relative macro gain D_mult (%.1f%%) > D (%.1f%%): %s\n",
              sato_mult > base_mult ? "yes" : "NO",
              100.0 * (sato_mult - base_mult) / base_mult,
              100.0 * (sato_d - base_d) / base_d,
              (sato_mult - base_mult) / base_mult >
                      (sato_d - base_d) / base_d
                  ? "yes"
                  : "NO");
  return 0;
}
