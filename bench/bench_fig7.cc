// Regenerates Figure 7: per-type F1 with vs without *topic-aware*
// prediction.
//   (a) Sato vs Sato_noTopic        (topic effect on top of the CRF)
//   (b) Sato_noStruct vs Base       (topic effect alone)
//
// Expected shape (paper): the majority of types improve; the largest gains
// concentrate in underrepresented (long-tail) types; a small number of
// types get worse.

#include <cstdio>

#include "bench/bench_pertype.h"

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  SatoModel full = TrainVariant(sato::SatoVariant::kFull, env, split.train, 21);
  SatoModel no_topic =
      TrainVariant(sato::SatoVariant::kNoTopic, env, split.train, 21);
  SatoModel no_struct =
      TrainVariant(sato::SatoVariant::kNoStruct, env, split.train, 22);
  SatoModel base = TrainVariant(sato::SatoVariant::kBase, env, split.train, 22);

  std::printf("=== Figure 7: effect of topic-aware prediction (per-type F1) ===\n\n");
  PrintPerTypePanel("(a) Sato vs Sato_noTopic", PerTypeF1(&full, split.test),
                    "Sato", PerTypeF1(&no_topic, split.test), "Sato-NT");
  PrintPerTypePanel("(b) Sato_noStruct vs Base",
                    PerTypeF1(&no_struct, split.test), "Sato-NS",
                    PerTypeF1(&base, split.test), "Base");
  return 0;
}
