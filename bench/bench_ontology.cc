// Hierarchical evaluation under the §6 type ontology ("country and city
// are types of location; club and company are types of organisation") --
// the future-work direction of exploiting type hierarchy, made measurable:
//
//   1. coarse-grained (parent-category) F1 for every model variant, and
//   2. error locality: the fraction of misclassifications that stay
//      *within* the gold type's semantic family.
//
// Expected shape: coarse F1 well above fine F1 for every model (most
// confusion is within-family, e.g. birthPlace vs city); Sato reduces the
// cross-family error fraction relative to Base because table context rules
// out whole families at once.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/model_eval.h"
#include "table/ontology.h"

int main() {
  using namespace sato::bench;
  using sato::SatoModel;
  BenchEnv env = BuildEnv();

  sato::util::Rng fold_rng(99);
  auto folds = sato::eval::KFold(env.dataset_dmult.tables.size(), 5, &fold_rng);
  Split split = MakeSplit(env.dataset_dmult, folds[0]);

  std::printf("=== Ontology: hierarchical evaluation (Sec 6 future work) ===\n\n");
  std::printf("  %-14s %-10s %-10s %-12s %-14s\n", "Model", "fine F1",
              "coarse F1", "errors", "cross-family");
  PrintRule(66);

  const sato::SatoVariant kVariants[] = {
      sato::SatoVariant::kBase, sato::SatoVariant::kNoStruct,
      sato::SatoVariant::kNoTopic, sato::SatoVariant::kFull};
  double base_cross = -1.0, sato_cross = -1.0;
  for (sato::SatoVariant variant : kVariants) {
    SatoModel model = TrainVariant(variant, env, split.train, 91);
    std::vector<int> gold, pred;
    sato::eval::PredictDataset(&model, split.test, &gold, &pred);

    auto fine = sato::eval::Evaluate(gold, pred, sato::kNumSemanticTypes);
    auto coarse = sato::eval::Evaluate(sato::MapToCoarse(gold),
                                       sato::MapToCoarse(pred),
                                       sato::kNumCoarseTypes);
    size_t errors = 0, cross_family = 0;
    for (size_t i = 0; i < gold.size(); ++i) {
      if (gold[i] == pred[i]) continue;
      ++errors;
      if (sato::CoarseTypeOf(gold[i]) != sato::CoarseTypeOf(pred[i])) {
        ++cross_family;
      }
    }
    double cross_frac = errors > 0 ? static_cast<double>(cross_family) /
                                         static_cast<double>(errors)
                                   : 0.0;
    if (variant == sato::SatoVariant::kBase) base_cross = cross_frac;
    if (variant == sato::SatoVariant::kFull) sato_cross = cross_frac;
    std::printf("  %-14s %-10.3f %-10.3f %-12zu %13.1f%%\n",
                VariantName(variant).c_str(), fine.weighted_f1,
                coarse.weighted_f1, errors, 100.0 * cross_frac);
  }
  PrintRule(66);
  std::printf("\nShape check: coarse F1 > fine F1 (confusions mostly stay in "
              "family); Sato cross-family error fraction (%.0f%%) <= Base "
              "(%.0f%%): %s\n",
              100.0 * sato_cross, 100.0 * base_cross,
              sato_cross <= base_cross + 1e-9 ? "yes" : "NO");
  return 0;
}
