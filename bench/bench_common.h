#ifndef SATO_BENCH_BENCH_COMMON_H_
#define SATO_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the table/figure regeneration harness.
//
// Every bench binary is self-contained: it synthesises the corpus with a
// fixed seed, trains whatever models it needs, and prints rows/series in
// the layout of the corresponding paper table/figure. The environment
// variable SATO_BENCH_SCALE (tiny | small | medium | large, default small)
// selects the corpus/model scale; result *shapes* are stable across scales
// (tiny exists for CI smoke runs).

#include <string>
#include <vector>

#include "core/config.h"
#include "core/dataset.h"
#include "core/feature_context.h"
#include "core/sato_model.h"
#include "core/trainer.h"
#include "corpus/generator.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace sato::bench {

/// Scale profile resolved from SATO_BENCH_SCALE.
struct BenchScale {
  std::string name;
  size_t corpus_tables;     ///< |D|
  size_t reference_tables;  ///< LDA/embedding pre-training corpus
  int num_topics;
  int epochs;
  int crf_epochs;
  size_t folds;             ///< cross-validation folds (Table 1)
  int trials;               ///< repeated-measurement trials (Table 2, Fig 9)
};

/// Reads SATO_BENCH_SCALE and returns the matching profile.
BenchScale GetScale();

/// Everything the experiments share: the corpus (D and D_mult), the
/// pre-trained feature context, and the featurised (unscaled) datasets.
struct BenchEnv {
  BenchScale scale;
  SatoConfig config;
  std::vector<Table> tables_d;
  std::vector<Table> tables_dmult;
  FeatureContext context;
  Dataset dataset_d;      ///< featurised D (unscaled)
  Dataset dataset_dmult;  ///< featurised D_mult (unscaled)
  ColumnwiseModel::Dims dims;
};

/// Builds the corpus, trains embeddings + LDA, featurises both datasets.
/// Prints progress to stderr.
BenchEnv BuildEnv(uint64_t seed = 7);

/// Splits a dataset by table indices.
Dataset Subset(const Dataset& data, const std::vector<size_t>& indices);

/// Trains one variant on an (already standardised) training split.
/// Returns the model and fills `stats` when non-null.
SatoModel TrainVariant(SatoVariant variant, const BenchEnv& env,
                       const Dataset& train, uint64_t seed,
                       Trainer::TrainStats* stats = nullptr);

/// One standardised train/test split of a dataset (copies, fits the scaler
/// on train, transforms both).
struct Split {
  Dataset train;
  Dataset test;
};
Split MakeSplit(const Dataset& data, const eval::FoldIndices& fold);

/// Formats "0.735 ±0.022" -- the Table 1 cell format.
std::string FormatWithCi(const std::vector<double>& values);

/// Formats the relative improvement over a baseline mean in the paper's
/// "(14.4%^)" style.
std::string FormatImprovement(double value, double baseline);

/// Prints a horizontal rule of the given width.
void PrintRule(int width);

}  // namespace sato::bench

#endif  // SATO_BENCH_BENCH_COMMON_H_
