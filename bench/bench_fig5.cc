// Regenerates Figure 5: the counts of the 78 semantic types in the dataset
// D, printed in descending order with an ASCII bar chart.
//
// Expected shape (paper): a long-tailed distribution -- the head types
// (name, description, team, type, age, ...) dominate, the tail types
// (continent, organisation, sales, director, ...) have few samples.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace sato::bench;
  // Figure 5 needs only the corpus, not features/models -- but the scale
  // profile should match the other benches, so go through the generator
  // directly at the same table count.
  BenchScale scale = GetScale();
  sato::corpus::CorpusOptions copts;
  copts.num_tables = scale.corpus_tables;
  copts.seed = 7;
  sato::corpus::CorpusGenerator gen(copts);
  auto tables = gen.Generate();

  std::vector<size_t> counts(sato::kNumSemanticTypes, 0);
  size_t total = 0;
  for (const auto& t : tables) {
    for (const auto& c : t.columns()) {
      ++counts[static_cast<size_t>(*c.type)];
      ++total;
    }
  }

  std::vector<int> order(sato::kNumSemanticTypes);
  for (int i = 0; i < sato::kNumSemanticTypes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return counts[a] > counts[b]; });

  std::printf("=== Figure 5: counts of the 78 semantic types in D ===\n");
  std::printf("(|D| = %zu tables, %zu labeled columns)\n\n", tables.size(),
              total);
  size_t max_count = counts[static_cast<size_t>(order[0])];
  for (int rank = 0; rank < sato::kNumSemanticTypes; ++rank) {
    int t = order[rank];
    size_t c = counts[static_cast<size_t>(t)];
    int bar = max_count > 0 ? static_cast<int>(50.0 * static_cast<double>(c) /
                                               static_cast<double>(max_count))
                            : 0;
    std::printf("  %-16s %6zu  %s\n", sato::TypeName(t).c_str(), c,
                std::string(static_cast<size_t>(bar), '#').c_str());
  }

  // Long-tail summary.
  size_t head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += counts[static_cast<size_t>(order[i])];
  for (int i = 63; i < 78; ++i) tail += counts[static_cast<size_t>(order[i])];
  std::printf("\nShape check: top-10 types cover %.1f%% of columns; "
              "bottom-15 cover %.1f%% (long tail: %s)\n",
              100.0 * static_cast<double>(head) / static_cast<double>(total),
              100.0 * static_cast<double>(tail) / static_cast<double>(total),
              head > 10 * tail ? "yes" : "NO");
  return 0;
}
